(* The Trigger Support: exact vs endpoint detection, optimizer
   transparency (V(E) filtering never changes behaviour, only work), and
   window/consumption handling at the support level. *)

open Core

let map_to_domain e =
  (* The shared generators emit abstract evA/evB/evC types; the engine only
     generates store events, so rules are remapped onto the domain. *)
  let translate p =
    match Event_type.to_string p with
    | "evA(obj)" -> Domain.create_stock
    | "evB(obj)" -> Domain.modify_stock_quantity
    | _ -> Domain.delete_stock
  in
  Expr.map_primitives translate e

let noop_rule name event =
  {
    Rule.name;
    target = None;
    event;
    condition = [];
    action = [];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 0;
  }

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "engine error: %a" Engine.pp_error e

(* Replays (op-kind, index) pairs as single-op transaction lines. *)
let drive engine history =
  let live = ref [] in
  List.iter
    (fun (kind, idx) ->
      let op =
        match kind with
        | 0 ->
            Domain.new_stock ~quantity:(10 + idx) ~maxquantity:100
              ~minquantity:0
        | 1 -> (
            match !live with
            | [] ->
                Domain.new_stock ~quantity:(10 + idx) ~maxquantity:100
                  ~minquantity:0
            | l ->
                Operation.Modify
                  {
                    oid = List.nth l (idx mod List.length l);
                    attribute = "quantity";
                    value = Value.Int idx;
                  })
        | _ -> (
            match !live with
            | [] ->
                Domain.new_stock ~quantity:(10 + idx) ~maxquantity:100
                  ~minquantity:0
            | l -> Operation.Delete { oid = List.nth l (idx mod List.length l) })
      in
      ok (Engine.execute_line engine [ op ]);
      live := Object_store.extent (Engine.store engine) ~class_name:"stock")
    history

let arb_workload =
  QCheck.make
    ~print:(fun (es, h) ->
      Printf.sprintf "rules=[%s] ops=%d"
        (String.concat "; " (List.map Expr.to_string es))
        (List.length h))
    QCheck.Gen.(
      pair
        (list_size (int_range 1 5) (Gen.gen_set_expr Gen.Full))
        (list_size (int_range 0 25) (pair (int_range 0 2) (int_range 0 7))))

let run_config ?(memoize = false) ?(wake = Trigger_support.Indexed) detection
    optimizer (es, h) =
  let config =
    {
      Engine.default_config with
      Engine.trigger =
        { Trigger_support.detection; optimizer; style = Ts.Logical; memoize; wake };
    }
  in
  let engine = Engine.create ~config (Domain.schema ()) in
  List.iteri
    (fun i e ->
      ignore
        (Engine.define_exn engine
           (noop_rule (Printf.sprintf "r%d" i) (map_to_domain e))))
    es;
  drive engine h;
  engine

(* The headline guarantee of Section 5.1: the optimization is behaviour-
   preserving.  Same rules, same traffic, identical consideration counts —
   only the number of ts recomputations differs. *)
let optimizer_transparent =
  Gen.qcheck ~count:150 "V(E) filtering never changes rule behaviour"
    arb_workload
    (fun w ->
      let with_opt = run_config Trigger_support.Exact true w in
      let without = run_config Trigger_support.Exact false w in
      let a = Engine.statistics with_opt and b = Engine.statistics without in
      a.Engine.considerations = b.Engine.considerations
      && a.Engine.trigger_stats.Trigger_support.fired
         = b.Engine.trigger_stats.Trigger_support.fired)

let optimizer_saves_work =
  Gen.qcheck ~count:150 "V(E) filtering never adds recomputations"
    arb_workload
    (fun w ->
      let with_opt = run_config Trigger_support.Exact true w in
      let without = run_config Trigger_support.Exact false w in
      let a = Engine.statistics with_opt and b = Engine.statistics without in
      a.Engine.trigger_stats.Trigger_support.recomputations
      <= b.Engine.trigger_stats.Trigger_support.recomputations)

(* Endpoint detection only sees the final regime; exact detection also
   catches activations that happen strictly inside a block.  The rule
   -create(stock) + modify(stock.quantity) is transiently active between
   the modify and the create of the same line. *)
let test_exact_catches_transient () =
  let event =
    Expr.conj
      (Expr.not_ (Expr.prim Domain.create_stock))
      (Expr.prim Domain.modify_stock_quantity)
  in
  let run detection =
    let config =
      {
        Engine.default_config with
        Engine.trigger =
          { Trigger_support.default_config with detection; memoize = false };
      }
    in
    let engine = Engine.create ~config (Domain.schema ()) in
    (* Seed an object in a first transaction, then commit so the rule
       windows restart cleanly. *)
    let _ = Engine.define_exn engine (noop_rule "transient" event) in
    ok
      (Engine.execute_line engine
         [ Domain.new_stock ~quantity:5 ~maxquantity:10 ~minquantity:0 ]);
    ok (Engine.commit engine);
    let oid =
      List.hd (Object_store.extent (Engine.store engine) ~class_name:"stock")
    in
    (* One block: modify (rule momentarily active) then create (negation
       kills it at the endpoint). *)
    ok
      (Engine.execute_line engine
         [
           Operation.Modify { oid; attribute = "quantity"; value = Value.Int 1 };
           Domain.new_stock ~quantity:5 ~maxquantity:10 ~minquantity:0;
         ]);
    (Engine.statistics engine).Engine.trigger_stats.Trigger_support.fired
  in
  let exact = run Trigger_support.Exact in
  let endpoint = run Trigger_support.Endpoint in
  Alcotest.(check bool) "exact catches the transient activation" true (exact > endpoint)

(* On negation-free rules, exact and endpoint detection agree (activation
   is monotone within a window). *)
let exact_equals_endpoint_on_regular =
  Gen.qcheck ~count:150 "exact = endpoint on negation-free rules"
    (QCheck.make
       ~print:(fun (es, h) ->
         Printf.sprintf "rules=[%s] ops=%d"
           (String.concat "; " (List.map Expr.to_string es))
           (List.length h))
       QCheck.Gen.(
         pair
           (list_size (int_range 1 4) (Gen.gen_set_expr Gen.Regular))
           (list_size (int_range 0 25) (pair (int_range 0 2) (int_range 0 7)))))
    (fun w ->
      let exact = run_config Trigger_support.Exact true w in
      let endpoint = run_config Trigger_support.Endpoint true w in
      let a = Engine.statistics exact and b = Engine.statistics endpoint in
      a.Engine.considerations = b.Engine.considerations)

(* Memoized evaluation is behaviour-preserving: same considerations and
   firings with the per-rule memo tables on and off. *)
let memoize_transparent =
  Gen.qcheck ~count:150 "memoized detection never changes rule behaviour"
    arb_workload
    (fun w ->
      let memoized = run_config ~memoize:true Trigger_support.Exact true w in
      let plain = run_config ~memoize:false Trigger_support.Exact true w in
      let a = Engine.statistics memoized and b = Engine.statistics plain in
      a.Engine.considerations = b.Engine.considerations
      && a.Engine.trigger_stats.Trigger_support.fired
         = b.Engine.trigger_stats.Trigger_support.fired)

(* Preserving rules see the whole transaction again; consuming rules only
   what followed their last consideration. *)
let test_consumption_modes () =
  let count_with consumption =
    let engine = Engine.create (Domain.schema ()) in
    let spec =
      {
        Rule.name = "counts";
        target = None;
        event = Expr.prim Domain.create_stock;
        condition =
          [
            Condition.Occurred
              { expr = Expr.I_prim Domain.create_stock; var = "S" };
          ];
        action =
          [
            Action.A_modify
              {
                var = "S";
                attribute = "minquantity";
                value =
                  Query.Add
                    ( Query.Term (Query.Attr ("S", "minquantity")),
                      Query.Term (Query.Const (Value.Int 1)) );
              };
          ];
        coupling = Rule.Immediate;
        consumption;
        priority = 0;
      }
    in
    let _ = Engine.define_exn engine spec in
    ok
      (Engine.execute_line engine
         [ Domain.new_stock ~quantity:1 ~maxquantity:10 ~minquantity:0 ]);
    ok
      (Engine.execute_line engine
         [ Domain.new_stock ~quantity:1 ~maxquantity:10 ~minquantity:0 ]);
    let store = Engine.store engine in
    let first = List.hd (Object_store.extent store ~class_name:"stock") in
    match Object_store.get store first ~attribute:"minquantity" with
    | Ok (Value.Int n) -> n
    | _ -> Alcotest.fail "minquantity"
  in
  (* Consuming: the first object is processed once.  Preserving: the second
     line re-binds it (its creation is still in the window), so it is
     incremented twice. *)
  Alcotest.(check int) "consuming processes once" 1 (count_with Rule.Consuming);
  Alcotest.(check int) "preserving re-binds old events" 2
    (count_with Rule.Preserving)

let suite =
  [
    optimizer_transparent;
    optimizer_saves_work;
    memoize_transparent;
    Alcotest.test_case "exact catches transient activations" `Quick
      test_exact_catches_transient;
    exact_equals_endpoint_on_regular;
    Alcotest.test_case "consumption modes" `Quick test_consumption_modes;
  ]

(* Determinism: identical seeds and configs produce identical statistics
   (the property every bench table relies on). *)
let engine_is_deterministic =
  Gen.qcheck ~count:50 "engine runs are deterministic" arb_workload (fun w ->
      let a = Engine.statistics (run_config Trigger_support.Exact true w) in
      let b = Engine.statistics (run_config Trigger_support.Exact true w) in
      a.Engine.considerations = b.Engine.considerations
      && a.Engine.executions = b.Engine.executions
      && a.Engine.events = b.Engine.events
      && a.Engine.trigger_stats.Trigger_support.fired
         = b.Engine.trigger_stats.Trigger_support.fired)

let suite = suite @ [ engine_is_deterministic ]

(* The counter-budget guard (runs in CI via `dune runtest`): under the
   indexed wake, per-event trigger work must stay flat as the rule set
   widens — a regression that reintroduces any O(rules)-per-event cost
   into the wake path blows these budgets and fails the build.  The
   scenario is the E11 shape in miniature: [n] rules over disjoint event
   types, round-robin creates, so exactly one rule is relevant per
   line. *)
let test_indexed_counter_budget () =
  let n = 50 and lines = 400 in
  let class_name i = Printf.sprintf "b%d" i in
  let schema = Schema.create () in
  for i = 0 to n - 1 do
    match Schema.define schema ~name:(class_name i) ~attributes:[] () with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "schema"
  done;
  let config =
    {
      Engine.default_config with
      Engine.trigger =
        {
          Trigger_support.default_config with
          Trigger_support.wake = Trigger_support.Indexed;
        };
    }
  in
  let engine = Engine.create ~config schema in
  for i = 0 to n - 1 do
    ignore
      (Engine.define_exn engine
         (noop_rule
            (Printf.sprintf "b%d" i)
            (Expr.prim (Event_type.create ~class_name:(class_name i)))))
  done;
  for line = 0 to lines - 1 do
    ok
      (Engine.execute_line engine
         [ Operation.Create { class_name = class_name (line mod n); attrs = [] } ])
  done;
  let s = Engine.statistics engine in
  let t = s.Engine.trigger_stats in
  let events = s.Engine.events in
  Alcotest.(check bool) "traffic ran" true (events >= lines);
  (* Budgets: a constant per event plus a one-off [n] for the
     definition-time backlog drain (every fresh rule is checked once).
     The sweep wake blows these by a factor of ~n. *)
  let budget name actual limit =
    if actual > limit then
      Alcotest.failf "%s budget exceeded: %d > %d (events=%d, rules=%d)" name
        actual limit events n
  in
  budget "trigger.probes" t.Trigger_support.probes ((2 * events) + n);
  budget "trigger.checks" t.Trigger_support.checks ((4 * events) + (2 * n));
  budget "trigger.woken" t.Trigger_support.woken ((4 * events) + (2 * n))

let suite =
  suite
  @ [
      Alcotest.test_case "indexed wake counter budget (CI guard)" `Quick
        test_indexed_counter_budget;
    ]

(* Condition atoms form a conjunctive query: evaluation must be
   order-independent (the planner may reorder them freely). *)
let condition_order_independent =
  Gen.qcheck ~count:200 "condition evaluation is order-independent"
    (QCheck.make ~print:(fun (n, seed) -> Printf.sprintf "perm=%d seed=%d" n seed)
       QCheck.Gen.(pair (int_range 0 720) (int_range 0 1000)))
    (fun (perm, seed) ->
      let prng = Prng.create ~seed in
      let engine = Engine.create (Domain.schema ()) in
      (* Populate some stock and events. *)
      Scenario.run_inventory_traffic prng engine ~lines:6 ~ops_per_line:3;
      let atoms =
        [
          Condition.Range { var = "S"; class_name = "stock" };
          Condition.Occurred
            { expr = Expr.I_prim Domain.create_stock; var = "S" };
          Condition.Compare
            (Query.Cmp (Query.Ge, Query.Attr ("S", "quantity"),
               Query.Const (Value.Int 0)));
          Condition.Absent
            [
              Condition.Range { var = "O"; class_name = "stockOrder" };
              Condition.Compare
                (Query.Cmp (Query.Eq, Query.Attr ("O", "stock_ref"), Query.Var "S"));
            ];
        ]
      in
      (* A permutation of the atoms chosen by the index. *)
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
            List.concat_map
              (fun x ->
                List.map
                  (fun rest -> x :: rest)
                  (permutations (List.filter (fun y -> y != x) l)))
              l
      in
      let perms = permutations atoms in
      let chosen = List.nth perms (perm mod List.length perms) in
      let eb = Engine.event_base engine in
      let at = Event_base.probe_now eb in
      let env = Ts.env eb ~window:(Window.all ~upto:at) in
      let eval atoms =
        match Condition.eval (Engine.store engine) (Condition.Recompute env) ~at atoms with
        | Ok envs ->
            List.sort compare
              (List.filter_map
                 (fun e ->
                   match Condition.lookup e "S" with
                   | Some (Value.Oid oid) -> Some (Ident.Oid.to_int oid)
                   | _ -> None)
                 envs)
        | Error _ -> [ -1 ]
      in
      eval atoms = eval chosen)

let suite = suite @ [ condition_order_independent ]
