(* Printer/parser round-trip: the concrete syntax of Fig. 1 printed by
   [Expr.to_string] must parse back to the identical tree.  The printer
   emits minimal parentheses from operator priorities; this property pins
   it against the parser's associativity and precedence. *)

open Core

let roundtrip_set e =
  let printed = Expr.to_string e in
  match Expr_parse.parse printed with
  | Error msg ->
      QCheck.Test.fail_reportf "printed %S does not parse: %s" printed msg
  | Ok back ->
      if Expr.equal back e then true
      else
        QCheck.Test.fail_reportf
          "round-trip changed the tree:@.printed %S@.reparsed %S" printed
          (Expr.to_string back)

let roundtrip_inst ie =
  let printed = Expr.inst_to_string ie in
  match Expr_parse.parse_inst printed with
  | Error msg ->
      QCheck.Test.fail_reportf "printed %S does not parse: %s" printed msg
  | Ok back ->
      if Expr.equal_inst back ie then true
      else
        QCheck.Test.fail_reportf
          "round-trip changed the tree:@.printed %S@.reparsed %S" printed
          (Expr.inst_to_string back)

(* Handwritten trees covering every precedence boundary: conjunction and
   precedence share a priority level and associate left, disjunction binds
   loosest, negation tightest, and instance subtrees carry =-suffixed
   operators. *)
let test_pinned_cases () =
  let a = Expr.prim (List.nth Gen.alphabet_list 0) in
  let b = Expr.prim (List.nth Gen.alphabet_list 1) in
  let c = Expr.prim (List.nth Gen.alphabet_list 2) in
  let cases =
    [
      Expr.conj a (Expr.conj b c);
      Expr.conj (Expr.conj a b) c;
      Expr.seq a (Expr.conj b c);
      Expr.conj (Expr.seq a b) c;
      Expr.seq (Expr.seq a b) (Expr.seq a c);
      Expr.disj (Expr.conj a b) c;
      Expr.conj (Expr.disj a b) c;
      Expr.disj a (Expr.disj b c);
      Expr.not_ (Expr.disj a b);
      Expr.not_ (Expr.not_ a);
      Expr.conj (Expr.not_ a) (Expr.not_ b);
      Expr.seq (Expr.not_ (Expr.conj a b)) c;
    ]
  in
  List.iter (fun e -> ignore (roundtrip_set e)) cases;
  let pa = Expr.I_prim (List.nth Gen.alphabet_list 0) in
  let pb = Expr.I_prim (List.nth Gen.alphabet_list 1) in
  let inst_cases =
    [
      Expr.i_seq (Expr.i_conj pa pb) pb;
      Expr.i_conj pa (Expr.i_seq pa pb);
      Expr.i_not (Expr.i_disj pa pb);
      Expr.i_disj (Expr.i_not pa) (Expr.i_seq pa pb);
    ]
  in
  List.iter (fun ie -> ignore (roundtrip_inst ie)) inst_cases;
  (* Instance subtrees embedded at the set level. *)
  List.iter
    (fun e -> ignore (roundtrip_set e))
    [
      Expr.conj (Expr.inst (Expr.i_seq pa pb)) b;
      Expr.disj a (Expr.inst (Expr.i_not pa));
    ]

let suite =
  [
    ("pinned precedence cases", `Quick, test_pinned_cases);
    Gen.qcheck ~count:1000 "parse (print e) = e (full profile)"
      (Gen.arb_set_expr Gen.Full) roundtrip_set;
    Gen.qcheck ~count:1000 "parse (print e) = e (boolean profile)"
      (Gen.arb_set_expr Gen.Boolean) roundtrip_set;
    Gen.qcheck ~count:1000 "parse_inst (print ie) = ie" Gen.arb_inst_expr
      roundtrip_inst;
  ]
