(* Integration tests for the rule engine: the paper's checkStockQty
   example (Section 2), coupling modes, consumption modes, priorities,
   detriggering/retriggering, cascades, and the R <> 0 reactivity gate. *)

open Core

let stock_schema () =
  let schema = Schema.create () in
  let ok = function Ok x -> x | Error _ -> Alcotest.fail "schema" in
  let _ =
    ok
      (Schema.define schema ~name:"stock"
         ~attributes:
           [
             ("quantity", Value.T_int);
             ("maxquantity", Value.T_int);
             ("minquantity", Value.T_int);
           ]
         ())
  in
  let _ =
    ok
      (Schema.define schema ~name:"show"
         ~attributes:[ ("quantity", Value.T_int) ]
         ())
  in
  let _ =
    ok
      (Schema.define schema ~name:"stockOrder"
         ~attributes:[ ("delquantity", Value.T_int) ]
         ())
  in
  schema

let create_stock ~quantity ~maxquantity =
  Operation.Create
    {
      class_name = "stock";
      attrs =
        [
          ("quantity", Value.Int quantity);
          ("maxquantity", Value.Int maxquantity);
          ("minquantity", Value.Int 0);
        ];
    }

(* The rule of Section 2: on stock creation, clamp quantity to
   maxquantity. *)
let check_stock_qty_spec =
  {
    Rule.name = "checkStockQty";
    target = Some "stock";
    event = Expr_parse.parse_exn "create(stock)";
    condition =
      [
        Condition.Range { var = "S"; class_name = "stock" };
        Condition.Occurred
          { expr = Expr_parse.parse_inst_exn "create(stock)"; var = "S" };
        Condition.Compare
          (Query.Cmp (Query.Gt, Query.Attr ("S", "quantity"),
             Query.Attr ("S", "maxquantity")));
      ];
    action =
      [
        Action.A_modify
          {
            var = "S";
            attribute = "quantity";
            value = Query.Term (Query.Attr ("S", "maxquantity"));
          };
      ];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 1;
  }

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "engine error: %a" Engine.pp_error e

let get_int engine oid attr =
  match Object_store.get (Engine.store engine) oid ~attribute:attr with
  | Ok (Value.Int i) -> i
  | Ok v -> Alcotest.failf "expected int, got %s" (Value.to_string v)
  | Error e -> Alcotest.failf "get: %a" Object_store.pp_error e

let all_stock engine = Object_store.extent (Engine.store engine) ~class_name:"stock"

let test_check_stock_qty () =
  let engine = Engine.create (stock_schema ()) in
  let _rule = Engine.define_exn engine check_stock_qty_spec in
  (* Two violating creations and one compliant, in one transaction line:
     the rule runs set-oriented and fixes both violators. *)
  ok
    (Engine.execute_line engine
       [
         create_stock ~quantity:50 ~maxquantity:10;
         create_stock ~quantity:5 ~maxquantity:10;
         create_stock ~quantity:99 ~maxquantity:20;
       ]);
  (match all_stock engine with
  | [ a; b; c ] ->
      Alcotest.(check int) "first clamped" 10 (get_int engine a "quantity");
      Alcotest.(check int) "second untouched" 5 (get_int engine b "quantity");
      Alcotest.(check int) "third clamped" 20 (get_int engine c "quantity")
  | other -> Alcotest.failf "expected 3 stock objects, got %d" (List.length other));
  let stats = Engine.statistics engine in
  Alcotest.(check bool) "rule executed" true (stats.Engine.executions >= 1)

let test_consuming_no_reconsideration () =
  (* After consideration, old events lose the capability of triggering the
     rule (Section 2): a consuming rule does not re-fire on its own
     history. *)
  let engine = Engine.create (stock_schema ()) in
  let _ = Engine.define_exn engine check_stock_qty_spec in
  ok (Engine.execute_line engine [ create_stock ~quantity:50 ~maxquantity:10 ]);
  let stats = Engine.statistics engine in
  let execs_before = stats.Engine.executions in
  (* A line with an unrelated event: rule must not re-run on the old
     create. *)
  ok
    (Engine.execute_line engine
       [
         Operation.Create
           { class_name = "show"; attrs = [ ("quantity", Value.Int 1) ] };
       ]);
  Alcotest.(check int) "no new execution" execs_before stats.Engine.executions

let test_deferred_waits_for_commit () =
  let spec = { check_stock_qty_spec with Rule.coupling = Rule.Deferred } in
  let engine = Engine.create (stock_schema ()) in
  let _ = Engine.define_exn engine spec in
  ok (Engine.execute_line engine [ create_stock ~quantity:50 ~maxquantity:10 ]);
  (match all_stock engine with
  | [ a ] ->
      Alcotest.(check int) "not yet clamped" 50 (get_int engine a "quantity");
      ok (Engine.commit engine);
      Alcotest.(check int) "clamped at commit" 10 (get_int engine a "quantity")
  | _ -> Alcotest.fail "expected one stock object")

let test_priorities_order_consideration () =
  (* Two rules on the same event; the higher-priority one must be
     considered first.  Observable through the actions: both append to a
     log class via creations whose order shows up in oids. *)
  let schema = stock_schema () in
  let _ =
    match
      Schema.define schema ~name:"log" ~attributes:[ ("tag", Value.T_str) ] ()
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "schema"
  in
  let engine = Engine.create schema in
  let log_rule name priority tag =
    {
      Rule.name;
      target = None;
      event = Expr_parse.parse_exn "create(stock)";
      condition =
        [
          Condition.Occurred
            { expr = Expr_parse.parse_inst_exn "create(stock)"; var = "S" };
        ];
      action =
        [
          Action.A_create
            {
              class_name = "log";
              attrs = [ ("tag", Query.Term (Query.Const (Value.Str tag))) ];
              bind = None;
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority;
    }
  in
  let _ = Engine.define_exn engine (log_rule "low" 1 "low") in
  let _ = Engine.define_exn engine (log_rule "high" 9 "high") in
  ok (Engine.execute_line engine [ create_stock ~quantity:1 ~maxquantity:10 ]);
  let logs = Object_store.extent (Engine.store engine) ~class_name:"log" in
  let tags =
    List.map
      (fun oid ->
        match Object_store.get (Engine.store engine) oid ~attribute:"tag" with
        | Ok (Value.Str s) -> s
        | _ -> Alcotest.fail "tag")
      logs
  in
  Alcotest.(check (list string)) "high first" [ "high"; "low" ] tags

let test_cascade_retriggering () =
  (* Rule A's action creates a show object; rule B reacts to that creation:
     rule processing must cascade. *)
  let engine = Engine.create (stock_schema ()) in
  let rule_a =
    {
      Rule.name = "onStockCreate";
      target = None;
      event = Expr_parse.parse_exn "create(stock)";
      condition =
        [
          Condition.Occurred
            { expr = Expr_parse.parse_inst_exn "create(stock)"; var = "S" };
        ];
      action =
        [
          Action.A_create
            {
              class_name = "show";
              attrs = [ ("quantity", Query.Term (Query.Const (Value.Int 0))) ];
              bind = None;
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority = 2;
    }
  in
  let rule_b =
    {
      Rule.name = "onShowCreate";
      target = None;
      event = Expr_parse.parse_exn "create(show)";
      condition =
        [
          Condition.Occurred
            { expr = Expr_parse.parse_inst_exn "create(show)"; var = "W" };
        ];
      action =
        [
          Action.A_modify
            {
              var = "W";
              attribute = "quantity";
              value = Query.Term (Query.Const (Value.Int 42));
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority = 1;
    }
  in
  let _ = Engine.define_exn engine rule_a in
  let _ = Engine.define_exn engine rule_b in
  ok (Engine.execute_line engine [ create_stock ~quantity:1 ~maxquantity:10 ]);
  let shows = Object_store.extent (Engine.store engine) ~class_name:"show" in
  (match shows with
  | [ w ] -> Alcotest.(check int) "cascaded" 42 (get_int engine w "quantity")
  | _ -> Alcotest.fail "expected one show object")

let test_nontermination_guard () =
  (* A rule that reacts to create(show) by creating another show never
     quiesces; the engine must stop with `Nontermination instead of
     looping. *)
  let config =
    { Engine.default_config with Engine.max_rule_executions = 50 }
  in
  let engine = Engine.create ~config (stock_schema ()) in
  let spec =
    {
      Rule.name = "loop";
      target = None;
      event = Expr_parse.parse_exn "create(show)";
      condition =
        [
          Condition.Occurred
            { expr = Expr_parse.parse_inst_exn "create(show)"; var = "W" };
        ];
      action =
        [
          Action.A_create
            {
              class_name = "show";
              attrs = [ ("quantity", Query.Term (Query.Const (Value.Int 0))) ];
              bind = None;
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority = 1;
    }
  in
  let _ = Engine.define_exn engine spec in
  match
    Engine.execute_line engine
      [
        Operation.Create
          { class_name = "show"; attrs = [ ("quantity", Value.Int 1) ] };
      ]
  with
  | Error (`Nontermination _) -> ()
  | Ok () -> Alcotest.fail "expected nontermination"
  | Error e -> Alcotest.failf "unexpected error: %a" Engine.pp_error e

let test_negation_reactive_not_active () =
  (* A rule on -create(stock) must not fire while nothing at all happens
     (the R <> 0 gate keeps the system reactive), but fires once any
     activity occurs without a stock creation.  Since any event retriggers
     a negation rule — including its own action's — the rule's condition
     makes it quiesce (set a marker to 7 only while it differs). *)
  let engine = Engine.create (stock_schema ()) in
  let spec =
    {
      Rule.name = "noStock";
      target = None;
      event = Expr_parse.parse_exn "-create(stock)";
      condition =
        [
          Condition.Range { var = "W"; class_name = "show" };
          Condition.Compare
            (Query.Cmp (Query.Neq, Query.Attr ("W", "quantity"),
               Query.Const (Value.Int 7)));
        ];
      action =
        [
          Action.A_modify
            {
              var = "W";
              attribute = "quantity";
              value = Query.Term (Query.Const (Value.Int 7));
            };
        ];
      coupling = Rule.Deferred;
      consumption = Rule.Consuming;
      priority = 1;
    }
  in
  let _ = Engine.define_exn engine spec in
  (* Empty transaction: commit must not trigger the rule at all. *)
  ok (Engine.commit engine);
  let stats = Engine.statistics engine in
  Alcotest.(check int)
    "nothing happened, never triggered" 0
    stats.Engine.trigger_stats.Trigger_support.fired;
  (* Unrelated activity (a show creation, no stock creation): the negation
     rule fires at commit and sets the marker. *)
  ok
    (Engine.execute_line engine
       [
         Operation.Create
           { class_name = "show"; attrs = [ ("quantity", Value.Int 1) ] };
       ]);
  ok (Engine.commit engine);
  (match Object_store.extent (Engine.store engine) ~class_name:"show" with
  | [ w ] -> Alcotest.(check int) "marker set" 7 (get_int engine w "quantity")
  | _ -> Alcotest.fail "expected one show object");
  Alcotest.(check bool)
    "triggered at least once" true
    (stats.Engine.trigger_stats.Trigger_support.fired >= 1)

let test_targeted_rule_validation () =
  let engine = Engine.create (stock_schema ()) in
  let spec =
    {
      check_stock_qty_spec with
      Rule.name = "bad";
      event = Expr_parse.parse_exn "create(show)";
    }
  in
  match Engine.define engine spec with
  | Error (`Rule_error _) -> ()
  | Ok _ -> Alcotest.fail "expected target validation to fail"

(* Undefining a rule the engine does not hold is an [Error], never an
   exception — the server leans on this when an UNSUB races a
   disconnect's own teardown of the same dynamic rule. *)
let test_undefine_unknown_is_error () =
  let engine = Engine.create (stock_schema ()) in
  (match Engine.undefine engine "never-defined" with
  | Error (`Rule_error _) -> ()
  | Ok () -> Alcotest.fail "undefine of an unknown rule succeeded");
  (match Engine.define_dynamic engine check_stock_qty_spec with
  | Ok _ -> ()
  | Error (`Rule_error msg) -> Alcotest.fail msg);
  (match Engine.undefine engine "checkStockQty" with
  | Ok () -> ()
  | Error (`Rule_error msg) -> Alcotest.fail msg);
  (* The second drop of the same name: same clean refusal. *)
  (match Engine.undefine engine "checkStockQty" with
  | Error (`Rule_error _) -> ()
  | Ok () -> Alcotest.fail "double undefine succeeded");
  (* And the engine still works: redefining under the dropped name is
     legal. *)
  match Engine.define_dynamic engine check_stock_qty_spec with
  | Ok _ -> ()
  | Error (`Rule_error msg) -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "checkStockQty clamps violators" `Quick
      test_check_stock_qty;
    Alcotest.test_case "consuming rules do not reconsider old events" `Quick
      test_consuming_no_reconsideration;
    Alcotest.test_case "deferred rules wait for commit" `Quick
      test_deferred_waits_for_commit;
    Alcotest.test_case "priorities order consideration" `Quick
      test_priorities_order_consideration;
    Alcotest.test_case "rule cascades retrigger" `Quick
      test_cascade_retriggering;
    Alcotest.test_case "nontermination guard" `Quick test_nontermination_guard;
    Alcotest.test_case "negation rules are reactive, not active" `Quick
      test_negation_reactive_not_active;
    Alcotest.test_case "targeted rule validation" `Quick
      test_targeted_rule_validation;
    Alcotest.test_case "undefine of an unknown rule is an error" `Quick
      test_undefine_unknown_is_error;
  ]
