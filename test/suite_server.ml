(* The network server suite: the wire protocol in isolation, the session
   manager in isolation, and the full reactor over real loopback sockets.

   The server and the load generator are both single-threaded pollable
   reactors, so every socket test interleaves [Server.poll] with a
   non-blocking client co-operatively in this one thread — no sleeps, no
   races, deterministic scheduling. *)

open Core

let mf = Protocol.default_max_frame

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------- protocol unit *)

let roundtrip_command c =
  match Protocol.command_of_payload (Protocol.command_to_payload c) with
  | Ok c' ->
      Alcotest.(check bool)
        (Printf.sprintf "command %s" (Protocol.command_to_payload c))
        true (c = c')
  | Error msg -> Alcotest.failf "command rejected: %s" msg

let roundtrip_reply r =
  match Protocol.reply_of_payload (Protocol.reply_to_payload r) with
  | Ok r' ->
      Alcotest.(check bool)
        (Printf.sprintf "reply %s" (Protocol.reply_to_payload r))
        true (r = r')
  | Error msg -> Alcotest.failf "reply rejected: %s" msg

let test_payload_roundtrip () =
  List.iter roundtrip_command
    [
      Protocol.Hello Protocol.version;
      Protocol.Line "create item(n = 1)";
      Protocol.Line "create item(n = 1) as X;\nshow item";
      Protocol.Commit;
      Protocol.Abort;
      Protocol.Stats;
      Protocol.Ping "";
      Protocol.Ping "tok-42";
      Protocol.Quit;
      Protocol.Sub { id = 0; binary = false; spec = "ON { tick }" };
      Protocol.Sub
        { id = 65535; binary = true; spec = "ON { tick } DO at({ tick }, X, T)" };
      Protocol.Unsub { id = 7 };
    ];
  List.iter roundtrip_reply
    [
      Protocol.Ok_ "";
      Protocol.Ok_ "pong tok";
      Protocol.Ok_ "line one\nline two";
      Protocol.Triggered [ "onItem" ];
      Protocol.Triggered [ "a"; "b"; "c" ];
      Protocol.Err ("proto", "bad thing happened");
      Protocol.Err ("shutdown", "draining");
    ];
  (match Protocol.command_of_payload "FROBNICATE now" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown verb accepted");
  match Protocol.reply_of_payload "WAT" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown reply verb accepted"

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.to_string b

let test_decode_frames () =
  let payload = "PING deadbeef" in
  let frame = Protocol.frame_exn ~max_frame:mf payload in
  let bytes = Bytes.of_string frame in
  (* Intact frame. *)
  (match Protocol.decode ~max_frame:mf bytes ~off:0 ~len:(Bytes.length bytes) with
  | Protocol.Frame (p, used) ->
      Alcotest.(check string) "payload" payload p;
      Alcotest.(check int) "used" (String.length frame) used
  | _ -> Alcotest.fail "intact frame not decoded");
  (* Every strict prefix is torn, never an error. *)
  for len = 0 to Bytes.length bytes - 1 do
    match Protocol.decode ~max_frame:mf bytes ~off:0 ~len with
    | Protocol.Need_more -> ()
    | _ -> Alcotest.failf "prefix of %d bytes not Need_more" len
  done;
  (* Zero-length frame: rejected frame-locally, stream stays framed. *)
  (match
     Protocol.decode ~max_frame:mf (Bytes.of_string (be32 0)) ~off:0 ~len:4
   with
  | Protocol.Reject (_, 4) -> ()
  | _ -> Alcotest.fail "zero-length frame not Reject");
  (* Over the cap and u32-max length prefixes: framing is lost. *)
  List.iter
    (fun n ->
      match
        Protocol.decode ~max_frame:mf (Bytes.of_string (be32 n)) ~off:0 ~len:4
      with
      | Protocol.Corrupt _ -> ()
      | _ -> Alcotest.failf "length %d not Corrupt" n)
    [ mf + 1; 0x7fffffff; 0xffffffff ];
  (* An off/len range outside the buffer must not raise. *)
  (match Protocol.decode ~max_frame:mf bytes ~off:2 ~len:(Bytes.length bytes) with
  | Protocol.Corrupt _ -> ()
  | _ -> Alcotest.fail "out-of-range slice not Corrupt");
  (* Encoding refuses what decoding would reject. *)
  (match Protocol.frame_into ~max_frame:mf (Buffer.create 8) "" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty payload framed");
  match
    Protocol.frame_into ~max_frame:16 (Buffer.create 8) (String.make 17 'x')
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "oversized payload framed"

(* The event-codec regression (the decode-must-not-raise bugfix):
   negative or overflowed numeric fields return [Error]. *)
let test_event_codec_rejects_bad_numbers () =
  let eb = Event_base.create () in
  let occ =
    Event_base.record eb
      ~etype:(Event_type.external_ ~name:"tick" ~class_name:"")
      ~oid:(Ident.Oid.of_int 7)
  in
  let line = Event_codec.occurrence_line occ in
  let fields = String.split_on_char '\t' line in
  let patched i v =
    String.concat "\t" (List.mapi (fun j f -> if i = j then v else f) fields)
  in
  (match Event_codec.parse_occurrence_line line with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "valid line rejected: %s" msg);
  List.iter
    (fun bad ->
      match Event_codec.parse_occurrence_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" bad)
    [
      patched 2 "-1" (* negative oid *);
      patched 3 "-5" (* negative timestamp *);
      patched 3 "99999999999999999999" (* precision overflow *);
      patched 2 "7x" (* trailing garbage *);
    ]

(* ------------------------------------------------- binary frame codec *)

(* 1000 random records through the binary encoder and back: the decode is
   the exact inverse, frame shape checks agree, and the text EVENT twin
   carries the same fields — the two ingestion paths cannot drift. *)
let test_binary_roundtrip () =
  let rng = Random.State.make [| 0xb1a4 |] in
  let random_record () =
    {
      Protocol.etype_id = Random.State.int rng (Protocol.max_etype_id + 1);
      oid = Random.State.full_int rng 0x10000000000;
      timestamp = Random.State.full_int rng 0x10000000000;
    }
  in
  for case = 1 to 1000 do
    let r = random_record () in
    (* Single EVENT payload. *)
    let payload =
      Protocol.encode_event ~etype_id:r.Protocol.etype_id ~oid:r.Protocol.oid
        ~timestamp:r.Protocol.timestamp
    in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: EVENT payload is binary" case)
      true
      (Protocol.is_binary_payload payload);
    (match Protocol.check_binary payload with
    | Ok 1 -> ()
    | Ok n -> Alcotest.failf "case %d: EVENT counted as %d records" case n
    | Error msg -> Alcotest.failf "case %d: EVENT shape rejected: %s" case msg);
    (match Protocol.decode_binary payload with
    | Ok [ r' ] ->
        Alcotest.(check bool)
          (Printf.sprintf "case %d: EVENT round trip" case)
          true (r = r')
    | Ok _ -> Alcotest.failf "case %d: EVENT decoded to several records" case
    | Error msg -> Alcotest.failf "case %d: EVENT rejected: %s" case msg);
    (* BATCH payload of 1..8 records. *)
    let records = List.init (1 + Random.State.int rng 8) (fun _ -> random_record ()) in
    let payload = Protocol.encode_batch records in
    (match Protocol.check_binary payload with
    | Ok n when n = List.length records -> ()
    | Ok n -> Alcotest.failf "case %d: BATCH counted as %d records" case n
    | Error msg -> Alcotest.failf "case %d: BATCH shape rejected: %s" case msg);
    (match Protocol.decode_binary payload with
    | Ok records' ->
        Alcotest.(check bool)
          (Printf.sprintf "case %d: BATCH round trip" case)
          true (records = records')
    | Error msg -> Alcotest.failf "case %d: BATCH rejected: %s" case msg);
    (* The text twin: an EVENT verb carrying the same oid round-trips
       through the command grammar. *)
    let oid = r.Protocol.oid in
    match
      Protocol.command_of_payload
        (Protocol.command_to_payload (Protocol.Event { etype = "tick"; oid }))
    with
    | Ok (Protocol.Event { etype = "tick"; oid = oid' }) when oid = oid' -> ()
    | Ok _ -> Alcotest.failf "case %d: text EVENT drifted" case
    | Error msg -> Alcotest.failf "case %d: text EVENT rejected: %s" case msg
  done

(* Decode totality: 1000 random payloads (random bytes, plus mutations of
   valid frames) never raise — they decode or return [Error].  The
   specific rejection classes are pinned alongside. *)
let test_binary_decode_totality () =
  let rng = Random.State.make [| 0x70a1 |] in
  let survives payload =
    (match Protocol.check_binary payload with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "check_binary raised %s on %S" (Printexc.to_string e)
          payload);
    match Protocol.decode_binary payload with
    | Ok records ->
        (* A successful decode implies the shape check agreed. *)
        let n = List.length records in
        (match Protocol.check_binary payload with
        | Ok n' when n = n' -> ()
        | _ -> Alcotest.failf "decode/check disagree on %S" payload)
    | Error _ -> ()
    | exception e ->
        Alcotest.failf "decode_binary raised %s on %S" (Printexc.to_string e)
          payload
  in
  for _ = 1 to 500 do
    (* Arbitrary bytes, biased towards control-tag prefixes. *)
    let len = Random.State.int rng 64 in
    let payload =
      String.init len (fun i ->
          if i = 0 && Random.State.bool rng then
            Char.chr (Random.State.int rng 0x20)
          else Char.chr (Random.State.int rng 256))
    in
    survives payload
  done;
  for _ = 1 to 500 do
    (* Mutations of a valid frame: truncate, extend, or flip one byte. *)
    let records =
      List.init
        (1 + Random.State.int rng 4)
        (fun i -> { Protocol.etype_id = i; oid = i; timestamp = i })
    in
    let valid =
      if Random.State.bool rng then Protocol.encode_batch records
      else Protocol.encode_event ~etype_id:1 ~oid:2 ~timestamp:3
    in
    let payload =
      match Random.State.int rng 3 with
      | 0 -> String.sub valid 0 (Random.State.int rng (String.length valid))
      | 1 -> valid ^ String.make (1 + Random.State.int rng 8) '\x00'
      | _ ->
          let i = Random.State.int rng (String.length valid) in
          String.mapi
            (fun j c ->
              if i = j then Char.chr (Char.code c lxor (1 + Random.State.int rng 255))
              else c)
            valid
    in
    survives payload
  done;
  (* Pinned rejection classes. *)
  let record20 = String.make 20 '\x00' in
  let expect_error what payload =
    match Protocol.decode_binary payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect_error "empty payload" "";
  expect_error "unknown tag" ("\x03" ^ record20);
  expect_error "short EVENT" ("\x01" ^ String.sub record20 0 19);
  expect_error "long EVENT" ("\x01" ^ record20 ^ "\x00");
  expect_error "BATCH count mismatch" ("\x02\x00\x00\x00\x02" ^ record20);
  expect_error "BATCH of zero records" "\x02\x00\x00\x00\x00";
  (* A u64 field past OCaml's 63-bit int: shape fine, field overflow. *)
  let overflow =
    "\x01" ^ String.make 4 '\x00' ^ "\xff" ^ String.make 7 '\x00'
    ^ String.make 8 '\x00'
  in
  (match Protocol.check_binary overflow with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "overflow record has valid shape");
  expect_error "u64 overflow" overflow

(* The zero-copy decode: its window aliases the caller's buffer, so the
   bytes must be copied out before the buffer is compacted — the server's
   read loop does exactly that.  Regression for the aliasing contract:
   the copied payload survives compaction, and both decode variants agree
   on every verdict. *)
let test_decode_view_alias_safety () =
  let p1 = "PING first" and p2 = "PING second" in
  let frames =
    Protocol.frame_exn ~max_frame:mf p1 ^ Protocol.frame_exn ~max_frame:mf p2
  in
  let buf = Bytes.of_string frames in
  let len = Bytes.length buf in
  (match Protocol.decode_view ~max_frame:mf buf ~off:0 ~len with
  | `Frame (off, plen, used) ->
      Alcotest.(check string) "window reads the first payload" p1
        (Bytes.sub_string buf off plen);
      (* Copy out, then compact the way the server does: blit the
         remainder to the front.  The window offsets now point into the
         SECOND frame's bytes — the copy must be unaffected. *)
      let copied = Bytes.sub_string buf off plen in
      Bytes.blit buf used buf 0 (len - used);
      Alcotest.(check string) "copy survives compaction" p1 copied;
      Alcotest.(check bool) "stale window now reads other bytes" true
        (Bytes.sub_string buf off plen <> p1);
      (* The compacted buffer decodes to the second frame. *)
      (match
         Protocol.decode_view ~max_frame:mf buf ~off:0 ~len:(len - used)
       with
      | `Frame (off2, plen2, _) ->
          Alcotest.(check string) "second frame after compaction" p2
            (Bytes.sub_string buf off2 plen2)
      | _ -> Alcotest.fail "second frame did not decode")
  | _ -> Alcotest.fail "first frame did not decode");
  (* The two decoders agree verdict-for-verdict. *)
  let agree bytes ~off ~len =
    match
      ( Protocol.decode ~max_frame:mf bytes ~off ~len,
        Protocol.decode_view ~max_frame:mf bytes ~off ~len )
    with
    | Protocol.Frame (p, used), `Frame (o, l, used') ->
        Alcotest.(check string) "same payload" p (Bytes.sub_string bytes o l);
        Alcotest.(check int) "same consumption" used used'
    | Protocol.Need_more, `Need_more -> ()
    | Protocol.Reject (_, skip), `Reject (_, skip') ->
        Alcotest.(check int) "same skip" skip skip'
    | Protocol.Corrupt _, `Corrupt _ -> ()
    | _ -> Alcotest.fail "decode and decode_view disagree"
  in
  let whole = Bytes.of_string frames in
  agree whole ~off:0 ~len:(Bytes.length whole);
  for cut = 0 to 6 do
    agree whole ~off:0 ~len:cut
  done;
  agree (Bytes.of_string (be32 0)) ~off:0 ~len:4;
  agree (Bytes.of_string (be32 (mf + 1))) ~off:0 ~len:4;
  agree whole ~off:2 ~len:(Bytes.length whole)

(* -------------------------------------------------- session manager unit *)

let boot_script =
  "define class item (n: integer);\n\
   define class audit (tag: string);\n\
   define immediate trigger onItem for item\n\
  \  events { create(item) }\n\
  \  condition item(I), occurred({ create(item) }, I), I.n > 0\n\
  \  actions create audit(tag = \"item\")\n\
   end;\n"

let feed mgr sid cmd =
  Session.Manager.on_payload mgr sid (Protocol.command_to_payload cmd)

let greet mgr sid =
  match feed mgr sid (Protocol.Hello Protocol.version) with
  | [ Session.Manager.Reply (_, Protocol.Ok_ _) ] -> ()
  | _ -> Alcotest.fail "greeting failed"

let test_manager_queueing_and_overflow () =
  let mgr =
    match
      Session.Manager.create ~engines:1 ~boot_script ~max_pending:2 ()
    with
    | Ok mgr -> mgr
    | Error msg -> Alcotest.fail msg
  in
  let s1 = Session.Manager.open_session mgr in
  let s2 = Session.Manager.open_session mgr in
  greet mgr s1;
  greet mgr s2;
  (* s1 opens a transaction and holds the single shard. *)
  (match feed mgr s1 (Protocol.Line "create item(n = 1)") with
  | [ Session.Manager.Reply (sid, Protocol.Triggered [ "onItem" ]) ] ->
      Alcotest.(check int) "reply to s1" s1 sid
  | _ -> Alcotest.fail "s1 line not triggered");
  Alcotest.(check bool) "s1 in tx" true (Session.Manager.in_transaction mgr s1);
  (* s2 queues behind the busy shard: no reply, marked blocked. *)
  (match feed mgr s2 (Protocol.Line "create item(n = 2)") with
  | [] -> ()
  | _ -> Alcotest.fail "queued command replied early");
  Alcotest.(check bool) "s2 blocked" true (Session.Manager.blocked mgr s2);
  (* The pending bound: one more queues, the next overflows and closes. *)
  (match feed mgr s2 Protocol.Commit with
  | [] -> ()
  | _ -> Alcotest.fail "second queued command replied early");
  (match feed mgr s2 Protocol.Commit with
  | [
   Session.Manager.Reply (_, Protocol.Err ("overflow", _));
   Session.Manager.Close sid;
  ] ->
      Alcotest.(check int) "closed s2" s2 sid
  | _ -> Alcotest.fail "pending overflow not enforced");
  (* s3 queues; s1's disconnect aborts its transaction and the waiter's
     reply surfaces from the disconnect call that freed the shard. *)
  let s3 = Session.Manager.open_session mgr in
  greet mgr s3;
  (match feed mgr s3 (Protocol.Line "create item(n = 3)") with
  | [] -> ()
  | _ -> Alcotest.fail "s3 not queued");
  (match Session.Manager.disconnect mgr s1 with
  | [ Session.Manager.Reply (sid, Protocol.Triggered [ "onItem" ]) ] ->
      Alcotest.(check int) "woken waiter" s3 sid
  | _ -> Alcotest.fail "disconnect did not wake the waiter");
  (match feed mgr s3 Protocol.Commit with
  | [ Session.Manager.Reply (_, Protocol.Ok_ _) ] -> ()
  | _ -> Alcotest.fail "s3 commit failed");
  Session.Manager.shutdown mgr

(* A HELLO session key re-pins the session before any engine traffic:
   the shard is [Fnv.hash key mod engines], not whatever the connection
   order happened to give. *)
let test_manager_hello_key_repin () =
  let mgr =
    match Session.Manager.create ~engines:4 ~boot_script () with
    | Ok mgr -> mgr
    | Error msg -> Alcotest.fail msg
  in
  Fun.protect ~finally:(fun () -> Session.Manager.shutdown mgr) @@ fun () ->
  let keys = List.init 32 (fun i -> Printf.sprintf "tenant-%04d" i) in
  List.iter
    (fun key ->
      let sid = Session.Manager.open_session mgr in
      (match
         feed mgr sid (Protocol.Hello (Protocol.version ^ " " ^ key))
       with
      | [ Session.Manager.Reply (_, Protocol.Ok_ _) ] -> ()
      | _ -> Alcotest.failf "keyed greeting failed for %s" key);
      Alcotest.(check int)
        (Printf.sprintf "pinned by key %s" key)
        (Fnv.hash key mod 4)
        (Session.Manager.shard_of_session mgr sid))
    keys;
  (* Same key, same shard — a reconnecting client lands on its data. *)
  let a = Session.Manager.open_session mgr in
  let b = Session.Manager.open_session mgr in
  List.iter
    (fun sid -> ignore (feed mgr sid (Protocol.Hello (Protocol.version ^ " sticky"))))
    [ a; b ];
  Alcotest.(check int) "same key, same shard"
    (Session.Manager.shard_of_session mgr a)
    (Session.Manager.shard_of_session mgr b)

(* ------------------------------------------------------- socket harness *)

type client = { fd : Unix.file_descr; mutable buf : Bytes.t; mutable len : int }

let connect srv =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  Unix.set_nonblock fd;
  { fd; buf = Bytes.create 4096; len = 0 }

let client_read c =
  let chunk = Bytes.create 4096 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> `Eof
  | n ->
      let need = c.len + n in
      if Bytes.length c.buf < need then begin
        let grown = Bytes.create (max need (2 * Bytes.length c.buf)) in
        Bytes.blit c.buf 0 grown 0 c.len;
        c.buf <- grown
      end;
      Bytes.blit chunk 0 c.buf c.len n;
      c.len <- need;
      `Read
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    ->
      `Nothing
  | exception Unix.Unix_error _ -> `Eof

let send_raw srv c s =
  let rec go off =
    if off < String.length s then
      match Unix.write_substring c.fd s off (String.length s - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error
          ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
          ignore (Server.poll srv ~timeout:0.005);
          go off
  in
  go 0

let send srv c cmd =
  send_raw srv c
    (Protocol.frame_exn ~max_frame:mf (Protocol.command_to_payload cmd))

(* Pulls the next reply, interleaving server polls with client reads;
   [`Timeout] after [polls] turns without one (used to assert that a
   reply must NOT arrive, with a small budget). *)
let recv ?(polls = 400) srv c =
  let take () =
    match Protocol.decode ~max_frame:mf c.buf ~off:0 ~len:c.len with
    | Protocol.Frame (payload, used) ->
        Bytes.blit c.buf used c.buf 0 (c.len - used);
        c.len <- c.len - used;
        (match Protocol.reply_of_payload payload with
        | Ok r -> Some r
        | Error msg -> Alcotest.failf "unparsable reply %S: %s" payload msg)
    | _ -> None
  in
  let rec go polls =
    match take () with
    | Some r -> `Reply r
    | None ->
        if polls <= 0 then `Timeout
        else begin
          ignore (Server.poll srv ~timeout:0.005);
          match client_read c with
          | `Eof -> ( match take () with Some r -> `Reply r | None -> `Eof)
          | `Read | `Nothing -> go (polls - 1)
        end
  in
  go polls

let expect_ok srv c what =
  match recv srv c with
  | `Reply (Protocol.Ok_ s) -> s
  | `Reply r ->
      Alcotest.failf "%s: expected OK, got %s" what (Protocol.reply_to_payload r)
  | `Eof -> Alcotest.failf "%s: connection closed" what
  | `Timeout -> Alcotest.failf "%s: no reply" what

let expect_triggered srv c what =
  match recv srv c with
  | `Reply (Protocol.Triggered rules) -> rules
  | `Reply r ->
      Alcotest.failf "%s: expected TRIGGERED, got %s" what
        (Protocol.reply_to_payload r)
  | `Eof | `Timeout -> Alcotest.failf "%s: no TRIGGERED reply" what

let expect_err srv c code what =
  match recv srv c with
  | `Reply (Protocol.Err (got, msg)) ->
      Alcotest.(check string) (what ^ ": code") code got;
      msg
  | `Reply r ->
      Alcotest.failf "%s: expected ERR %s, got %s" what code
        (Protocol.reply_to_payload r)
  | `Eof -> Alcotest.failf "%s: connection closed" what
  | `Timeout -> Alcotest.failf "%s: no reply" what

let expect_eof ?(polls = 400) srv c =
  match recv ~polls srv c with
  | `Eof -> ()
  | `Reply r ->
      Alcotest.failf "expected EOF, got %s" (Protocol.reply_to_payload r)
  | `Timeout -> Alcotest.fail "expected EOF, connection still open"

let hello srv c =
  send srv c (Protocol.Hello Protocol.version);
  let info = expect_ok srv c "hello" in
  Alcotest.(check bool)
    "greeting carries the version" true
    (contains_sub info Protocol.version)

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let stop_server srv =
  Server.request_drain srv;
  let rec go n =
    if n = 0 then Alcotest.fail "server did not stop on drain"
    else
      match Server.poll srv ~timeout:0.005 with
      | Server.Stopped -> ()
      | Server.Running -> go (n - 1)
  in
  go 1000

let with_server ?(config = Server.default_config) f =
  match Server.create { config with Server.port = 0 } with
  | Error msg -> Alcotest.fail msg
  | Ok srv -> Fun.protect ~finally:(fun () -> stop_server srv) (fun () -> f srv)

let with_boot_server ?(config = Server.default_config) f =
  with_server ~config:{ config with Server.boot_script = Some boot_script } f

(* --------------------------------------------------------- socket tests *)

let test_socket_roundtrip () =
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  send srv c (Protocol.Ping "tok");
  Alcotest.(check string) "ping echo" "pong tok" (expect_ok srv c "ping");
  send srv c (Protocol.Line "create item(n = 1) as X");
  Alcotest.(check (list string))
    "trigger executed" [ "onItem" ]
    (expect_triggered srv c "line");
  send srv c (Protocol.Line "show audit");
  Alcotest.(check bool)
    "audit visible in the open tx" true
    (contains_sub (expect_ok srv c "show") "audit (1)");
  send srv c Protocol.Commit;
  Alcotest.(check string) "commit" "" (expect_ok srv c "commit");
  send srv c Protocol.Stats;
  let stats = expect_ok srv c "stats" in
  Alcotest.(check bool) "engine stats" true (contains_sub stats "engine:");
  Alcotest.(check bool) "server stats" true (contains_sub stats "server:");
  send srv c Protocol.Quit;
  Alcotest.(check string) "bye" "bye" (expect_ok srv c "quit");
  expect_eof srv c

let test_socket_protocol_errors () =
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  (* Engine verbs before HELLO. *)
  send srv c Protocol.Commit;
  ignore (expect_err srv c "proto" "commit before hello");
  send srv c (Protocol.Line "create item(n = 1)");
  ignore (expect_err srv c "proto" "line before hello");
  hello srv c;
  (* COMMIT with no open transaction. *)
  send srv c Protocol.Commit;
  ignore (expect_err srv c "state" "commit without tx");
  (* A garbage verb inside a well-formed frame: ERR, connection lives. *)
  send_raw srv c (Protocol.frame_exn ~max_frame:mf "FROBNICATE now");
  ignore (expect_err srv c "proto" "garbage verb");
  (* A zero-length frame: rejected frame-locally, connection lives. *)
  send_raw srv c (be32 0);
  ignore (expect_err srv c "proto" "zero-length frame");
  send srv c (Protocol.Ping "");
  Alcotest.(check string) "alive after rejects" "pong" (expect_ok srv c "ping");
  (* commit; must travel as the COMMIT verb. *)
  send srv c (Protocol.Line "create item(n = 1);\ncommit;");
  ignore (expect_err srv c "proto" "commit inside LINE");
  (* A parse error and an engine error both keep the connection. *)
  send srv c (Protocol.Line "craete item(n = 1)");
  ignore (expect_err srv c "parse" "parse error");
  send srv c (Protocol.Line "create ghost(n = 1)");
  ignore (expect_err srv c "engine" "unknown class");
  (* The failed block rolled back but the transaction stayed the
     client's to close... *)
  send srv c Protocol.Abort;
  Alcotest.(check string) "abort" "aborted" (expect_ok srv c "abort");
  (* ...and a second ABORT has nothing to close. *)
  send srv c Protocol.Abort;
  ignore (expect_err srv c "state" "abort without tx");
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

let test_socket_oversized_frame_closes () =
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  (* A length prefix beyond the cap loses framing: ERR oversize, close. *)
  send_raw srv c (be32 (mf + 1));
  ignore (expect_err srv c "oversize" "oversized frame");
  expect_eof srv c;
  (* A u32-max prefix (the length-overflow regression) on a fresh
     connection behaves the same. *)
  let c2 = connect srv in
  Fun.protect ~finally:(fun () -> close_client c2) @@ fun () ->
  hello srv c2;
  send_raw srv c2 (be32 0xffffffff);
  ignore (expect_err srv c2 "oversize" "overflowed length prefix");
  expect_eof srv c2

let test_socket_torn_frame () =
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  let frame = Protocol.frame_exn ~max_frame:mf "PING torn" in
  let cut = String.length frame - 3 in
  send_raw srv c (String.sub frame 0 cut);
  (match recv ~polls:10 srv c with
  | `Timeout -> ()
  | _ -> Alcotest.fail "torn frame answered early");
  send_raw srv c (String.sub frame cut (String.length frame - cut));
  Alcotest.(check string) "completed frame" "pong torn" (expect_ok srv c "ping")

let test_socket_wrong_version_closes () =
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  send srv c (Protocol.Hello "bogus/9");
  ignore (expect_err srv c "proto" "wrong version");
  expect_eof srv c

let test_socket_shard_fifo () =
  with_boot_server ~config:{ Server.default_config with Server.engines = 1 }
  @@ fun srv ->
  let c1 = connect srv in
  let c2 = connect srv in
  Fun.protect ~finally:(fun () -> close_client c1; close_client c2)
  @@ fun () ->
  hello srv c1;
  hello srv c2;
  send srv c1 (Protocol.Line "create item(n = 1)");
  ignore (expect_triggered srv c1 "c1 line");
  (* c2 queues behind c1's transaction: no reply while c1 holds the shard. *)
  send srv c2 (Protocol.Line "create item(n = 2)");
  (match recv ~polls:20 srv c2 with
  | `Timeout -> ()
  | _ -> Alcotest.fail "c2 answered while the shard was held");
  send srv c1 Protocol.Commit;
  ignore (expect_ok srv c1 "c1 commit");
  ignore (expect_triggered srv c2 "c2 line after release");
  send srv c2 Protocol.Commit;
  ignore (expect_ok srv c2 "c2 commit")

let test_socket_backpressure_slow_reader () =
  with_boot_server
    ~config:{ Server.default_config with Server.high_water = 256 }
  @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  (* Pipeline many pings without reading a byte back: the reply buffer
     crosses the high-water mark, the server stops reading this
     connection, and nothing is lost or reordered once we drain. *)
  let n = 100 in
  let all = Buffer.create (n * 16) in
  for i = 1 to n do
    Buffer.add_string all
      (Protocol.frame_exn ~max_frame:mf
         (Protocol.command_to_payload (Protocol.Ping (string_of_int i))))
  done;
  send_raw srv c (Buffer.contents all);
  for _ = 1 to 20 do
    ignore (Server.poll srv ~timeout:0.001)
  done;
  Alcotest.(check int) "still connected" 1 (Server.active_conns srv);
  for i = 1 to n do
    Alcotest.(check string)
      (Printf.sprintf "pong %d" i)
      ("pong " ^ string_of_int i)
      (expect_ok srv c "ping")
  done;
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

let test_socket_idle_timeout () =
  with_boot_server
    ~config:{ Server.default_config with Server.idle_timeout = 0.05 }
  @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  let msg = expect_err srv c "shutdown" "idle reaping" in
  Alcotest.(check bool) "names the timeout" true (contains_sub msg "idle");
  expect_eof srv c

let test_socket_max_conns_rejects () =
  with_boot_server ~config:{ Server.default_config with Server.max_conns = 1 }
  @@ fun srv ->
  let c1 = connect srv in
  Fun.protect ~finally:(fun () -> close_client c1) @@ fun () ->
  hello srv c1;
  let c2 = connect srv in
  Fun.protect ~finally:(fun () -> close_client c2) @@ fun () ->
  ignore (expect_err srv c2 "busy" "admission cap");
  expect_eof srv c2;
  (* The admitted connection is unaffected. *)
  send srv c1 (Protocol.Ping "");
  Alcotest.(check string) "first conn lives" "pong" (expect_ok srv c1 "ping")

(* Graceful drain mid-transaction: buffered work finishes, clients get
   the shutdown notice, journals close flushed — and replay cleanly,
   without the aborted transaction. *)
let test_socket_drain_and_recover () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "chimera-serve-test-%d" (Unix.getpid ()))
  in
  let config =
    {
      Server.default_config with
      Server.engines = 2;
      boot_script = Some boot_script;
      journal_dir = Some dir;
    }
  in
  (match Server.create { config with Server.port = 0 } with
  | Error msg -> Alcotest.fail msg
  | Ok srv ->
      let c1 = connect srv in
      let c2 = connect srv in
      Fun.protect ~finally:(fun () -> close_client c1; close_client c2)
      @@ fun () ->
      hello srv c1;
      hello srv c2;
      (* c1 commits an item; c2 leaves one uncommitted. *)
      send srv c1 (Protocol.Line "create item(n = 1)");
      ignore (expect_triggered srv c1 "c1 line");
      send srv c1 Protocol.Commit;
      ignore (expect_ok srv c1 "c1 commit");
      send srv c2 (Protocol.Line "create item(n = 2)");
      (match recv ~polls:100 srv c2 with
      | `Reply (Protocol.Triggered _) | `Timeout -> ()
      | r ->
          Alcotest.failf "c2 line: unexpected %s"
            (match r with
            | `Reply r -> Protocol.reply_to_payload r
            | `Eof -> "EOF"
            | `Timeout -> assert false));
      let journals = Session.Manager.journal_paths (Server.manager srv) in
      Alcotest.(check int) "one journal per shard" 2 (List.length journals);
      Server.request_drain srv;
      let rec drive n =
        if n = 0 then Alcotest.fail "drain did not complete"
        else
          match Server.poll srv ~timeout:0.005 with
          | Server.Stopped -> ()
          | Server.Running ->
              ignore (client_read c1);
              ignore (client_read c2);
              drive (n - 1)
      in
      drive 1000;
      Alcotest.(check bool) "draining reported" true (Server.draining srv);
      (* Both clients were notified before their sockets closed. *)
      List.iter
        (fun c ->
          ignore (client_read c);
          match Protocol.decode ~max_frame:mf c.buf ~off:0 ~len:c.len with
          | Protocol.Frame (payload, _) -> (
              match Protocol.reply_of_payload payload with
              | Ok (Protocol.Err ("shutdown", _)) -> ()
              | Ok (Protocol.Triggered _) -> ()
              | _ -> Alcotest.failf "unexpected drain reply %S" payload)
          | _ -> Alcotest.fail "no drain notice buffered")
        [ c1; c2 ];
      (* Replay every shard journal into a fresh engine: only committed
         state survives (the boot commit plus c1's transaction). *)
      let live =
        List.fold_left
          (fun acc path ->
            let interp = Interp.create () in
            (match
               Interp.run_string interp
                 "define class item (n: integer);\n\
                  define class audit (tag: string);"
             with
            | Ok () -> ()
            | Error msg -> Alcotest.fail msg);
            match Engine.recover (Interp.engine interp) ~path with
            | Error msg -> Alcotest.failf "recover %s: %s" path msg
            | Ok report ->
                Alcotest.(check bool)
                  "boot commit journaled" true
                  (report.Engine.recovered_commits >= 1);
                acc
                + Object_store.count_live (Engine.store (Interp.engine interp)))
          0 journals
      in
      Alcotest.(check int) "item + audit committed, nothing else" 2 live);
  (* Temp cleanup. *)
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ())

(* The tentpole end to end: 4 shards on 2 worker domains, keyed sessions
   on distinct shards running transactions concurrently, then a clean
   drain that joins every domain (stop_server → Manager.shutdown). *)
let test_socket_multidomain () =
  with_boot_server
    ~config:
      { Server.default_config with Server.engines = 4; domains = Some 2 }
  @@ fun srv ->
  Alcotest.(check int) "worker domains running" 2
    (Session.Manager.domains (Server.manager srv));
  (* Four keys that pin to four distinct shards (checked below), so the
     four transactions really are concurrent — none queues behind
     another's shard. *)
  let keys = [ "alpha"; "charlie"; "echo"; "juliet" ] in
  let pins = List.map (fun k -> Fnv.hash k mod 4) keys in
  Alcotest.(check int) "keys cover all shards" 4
    (List.length (List.sort_uniq Int.compare pins));
  let clients =
    List.map
      (fun key ->
        let c = connect srv in
        send srv c (Protocol.Hello (Protocol.version ^ " " ^ key));
        ignore (expect_ok srv c ("hello " ^ key));
        (key, c))
      keys
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, c) -> close_client c) clients)
  @@ fun () ->
  (* Interleave: every client opens a transaction, then all commit. *)
  List.iteri
    (fun i (key, c) ->
      send srv c (Protocol.Line (Printf.sprintf "create item(n = %d)" (i + 1)));
      ignore (expect_triggered srv c ("line " ^ key)))
    clients;
  List.iter
    (fun (key, c) ->
      send srv c Protocol.Commit;
      Alcotest.(check string) ("commit " ^ key) ""
        (expect_ok srv c ("commit " ^ key)))
    clients;
  (* STATS executes on the worker owning the shard and round-trips. *)
  let _, c0 = List.hd clients in
  send srv c0 Protocol.Stats;
  let stats = expect_ok srv c0 "stats" in
  Alcotest.(check bool) "stats from the worker" true
    (contains_sub stats "engine:");
  List.iter
    (fun (key, c) ->
      send srv c Protocol.Quit;
      Alcotest.(check string) ("bye " ^ key) "bye" (expect_ok srv c "quit");
      expect_eof srv c)
    clients

(* ------------------------------------------------- loadgen + differential *)

let test_loadgen_in_process () =
  with_boot_server ~config:{ Server.default_config with Server.engines = 4 }
  @@ fun srv ->
  let lg =
    match
      Loadgen.create
        {
          Loadgen.default_config with
          Loadgen.port = Server.port srv;
          conns = 8;
          lines = 25;
          commit_every = 5;
        }
    with
    | Ok lg -> lg
    | Error msg -> Alcotest.fail msg
  in
  let rec drive n =
    if Loadgen.finished lg then ()
    else if n = 0 then Alcotest.fail "loadgen did not finish"
    else begin
      ignore (Server.poll srv ~timeout:0.001);
      Loadgen.poll lg ~timeout:0.001;
      drive (n - 1)
    end
  in
  drive 100_000;
  let r = Loadgen.report lg in
  Alcotest.(check int) "no protocol errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "every line answered" (8 * 25) r.Loadgen.lines_ok;
  Alcotest.(check int) "every line triggered" (8 * 25) r.Loadgen.triggered;
  Alcotest.(check int) "commits" (8 * 5) r.Loadgen.commits

(* The differential check: a scripted socket session must produce, reply
   by reply, the verdicts of driving the engine directly — same TRIGGERED
   rule lists, same inspection output, same error surface. *)
let differential_lines =
  [
    `Line "create item(n = 1) as A";
    `Line "create item(n = 0) as B";
    `Line "modify A.n = 5";
    `Line "show item";
    `Commit;
    `Line "create item(n = 2);\ncreate item(n = 3)";
    `Line "show audit";
    `Line "create ghost(n = 1)";
    `Abort;
    `Line "show audit";
    `Commit;
  ]

(* The direct-drive reference implements the documented LINE semantics by
   hand: per-line executed-rule capture, per-line output, errors as ERR. *)
let direct_verdicts () =
  let interp = Interp.create () in
  (match Interp.run_string interp boot_script with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Engine.commit (Interp.engine interp) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "boot commit");
  Interp.clear_output interp;
  let executed = ref [] in
  Engine.set_on_execution (Interp.engine interp) (fun name ->
      executed := name :: !executed);
  let trim s =
    let n = ref (String.length s) in
    while !n > 0 && (s.[!n - 1] = '\n' || s.[!n - 1] = '\r') do
      decr n
    done;
    String.sub s 0 !n
  in
  let run_statements statements =
    executed := [];
    Interp.clear_output interp;
    let result =
      List.fold_left
        (fun acc stmt ->
          match acc with
          | Error _ -> acc
          | Ok () -> Interp.run_statement interp stmt)
        (Ok ()) statements
    in
    match result with
    | Error msg -> Protocol.Err ("engine", msg)
    | Ok () -> (
        match List.rev !executed with
        | [] -> Protocol.Ok_ (trim (Interp.output interp))
        | rules -> Protocol.Triggered rules)
  in
  List.map
    (fun step ->
      match step with
      | `Line text -> (
          match Lang_parser.parse text with
          | Error msg -> Protocol.Err ("parse", msg)
          | Ok statements -> run_statements statements)
      | `Commit -> (
          executed := [];
          match Engine.commit (Interp.engine interp) with
          | Ok () -> (
              match List.rev !executed with
              | [] -> Protocol.Ok_ ""
              | rules -> Protocol.Triggered rules)
          | Error e ->
              Engine.abort (Interp.engine interp);
              Protocol.Err ("engine", Fmt.str "%a" Engine.pp_error e))
      | `Abort ->
          Engine.abort (Interp.engine interp);
          Protocol.Ok_ "aborted")
    differential_lines

let test_differential_socket_vs_direct () =
  let expected = direct_verdicts () in
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  let got =
    List.map
      (fun step ->
        send srv c
          (match step with
          | `Line text -> Protocol.Line text
          | `Commit -> Protocol.Commit
          | `Abort -> Protocol.Abort);
        match recv srv c with
        | `Reply r -> r
        | `Eof -> Alcotest.fail "connection closed mid-scenario"
        | `Timeout -> Alcotest.fail "no reply mid-scenario")
      differential_lines
  in
  List.iteri
    (fun i (want, have) ->
      Alcotest.(check string)
        (Printf.sprintf "step %d" i)
        (Protocol.reply_to_payload want)
        (Protocol.reply_to_payload have))
    (List.combine expected got);
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

(* ------------------------------------------- binary ingestion sockets *)

(* A boot script whose trigger subscribes to the external event type the
   binary frames carry, so every ingested record visibly executes a
   rule — the replies prove the events reached the rule engine, not just
   the wire. *)
let tick_boot_script =
  "define class audit (tag: string);\n\
   define immediate trigger onTick\n\
  \  events { tick }\n\
  \  actions create audit(tag = \"tick\")\n\
   end;\n"

let send_binary srv c payload =
  send_raw srv c (Protocol.frame_exn ~max_frame:mf payload)

let test_socket_binary_ingest () =
  with_server
    ~config:{ Server.default_config with boot_script = Some tick_boot_script }
  @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  send srv c (Protocol.Hello Protocol.version);
  let info = expect_ok srv c "hello" in
  List.iter
    (fun feature ->
      Alcotest.(check bool)
        (Printf.sprintf "greeting advertises %s" feature)
        true (contains_sub info feature))
    [ "bin"; "pipe"; "window=" ];
  send srv c (Protocol.Etype { id = 0; name = "tick" });
  ignore (expect_ok srv c "etype");
  (* One binary EVENT: the trigger fires once. *)
  send_binary srv c (Protocol.encode_event ~etype_id:0 ~oid:1 ~timestamp:0);
  Alcotest.(check (list string))
    "EVENT executed the trigger" [ "onTick" ]
    (expect_triggered srv c "binary event");
  (* One BATCH of three: one reply, three executions in order. *)
  send_binary srv c
    (Protocol.encode_batch
       (List.init 3 (fun i ->
            { Protocol.etype_id = 0; oid = 2 + i; timestamp = 0 })));
  Alcotest.(check (list string))
    "BATCH executed per record" [ "onTick"; "onTick"; "onTick" ]
    (expect_triggered srv c "binary batch");
  (* The trigger's actions are visible in the open transaction. *)
  send srv c (Protocol.Line "show audit");
  Alcotest.(check bool)
    "audits from binary events" true
    (contains_sub (expect_ok srv c "show") "audit (4)");
  send srv c Protocol.Commit;
  ignore (expect_ok srv c "commit");
  (* Re-announcing an id rebinds it; an id never announced is refused. *)
  send srv c (Protocol.Etype { id = 0; name = "tock" });
  ignore (expect_ok srv c "etype rebind");
  send_binary srv c (Protocol.encode_event ~etype_id:0 ~oid:9 ~timestamp:0);
  (match recv srv c with
  | `Reply (Protocol.Ok_ _) -> ()
  | r ->
      Alcotest.failf "rebound etype: %s"
        (match r with
        | `Reply r -> Protocol.reply_to_payload r
        | `Eof -> "EOF"
        | `Timeout -> "timeout"))
  ;
  send srv c Protocol.Abort;
  ignore (expect_ok srv c "abort");
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

let test_socket_binary_errors () =
  with_server
    ~config:{ Server.default_config with boot_script = Some tick_boot_script }
  @@ fun srv ->
  (* Binary frames before HELLO are a protocol error. *)
  let c0 = connect srv in
  Fun.protect ~finally:(fun () -> close_client c0) @@ fun () ->
  send_binary srv c0 (Protocol.encode_event ~etype_id:0 ~oid:1 ~timestamp:0);
  ignore (expect_err srv c0 "proto" "binary before hello");
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  (* Unknown etype id: announce-first is enforced per session. *)
  send_binary srv c (Protocol.encode_event ~etype_id:0 ~oid:1 ~timestamp:0);
  let msg = expect_err srv c "proto" "unannounced etype id" in
  Alcotest.(check bool) "names ETYPE" true (contains_sub msg "ETYPE");
  (* Unknown tag byte: frame-local reject, the connection lives. *)
  send_binary srv c ("\x1f" ^ String.make 20 '\x00');
  ignore (expect_err srv c "proto" "unknown binary tag");
  (* A BATCH whose count disagrees with its length: same. *)
  send_binary srv c ("\x02\x00\x00\x00\x05" ^ String.make 20 '\x00');
  ignore (expect_err srv c "proto" "batch count mismatch");
  (* A u64 field past the 63-bit int range: rejected on the worker. *)
  send srv c (Protocol.Etype { id = 0; name = "tick" });
  ignore (expect_ok srv c "etype");
  send_binary srv c
    ("\x01" ^ String.make 4 '\x00' ^ "\xff" ^ String.make 15 '\x00');
  ignore (expect_err srv c "proto" "u64 overflow");
  (* ETYPE ids above the cap are refused. *)
  send srv c (Protocol.Etype { id = Protocol.max_etype_id + 1; name = "x" });
  ignore (expect_err srv c "proto" "etype id over the cap");
  (* After all of that the session still ingests. *)
  send_binary srv c (Protocol.encode_event ~etype_id:0 ~oid:1 ~timestamp:0);
  Alcotest.(check (list string))
    "session survives the rejects" [ "onTick" ]
    (expect_triggered srv c "binary event");
  send srv c Protocol.Abort;
  ignore (expect_ok srv c "abort");
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

(* The load generator's pipelined binary mode against a live server:
   every event acknowledged, every work frame triggered, no errors. *)
let test_loadgen_binary_pipelined () =
  with_server
    ~config:
      {
        Server.default_config with
        boot_script = Some tick_boot_script;
        engines = 2;
      }
  @@ fun srv ->
  let lg =
    match
      Loadgen.create
        {
          Loadgen.default_config with
          Loadgen.port = Server.port srv;
          conns = 4;
          lines = 64;
          commit_every = 16;
          binary = true;
          pipeline = 16;
          batch = 4;
        }
    with
    | Ok lg -> lg
    | Error msg -> Alcotest.fail msg
  in
  let rec drive n =
    if Loadgen.finished lg then ()
    else if n = 0 then Alcotest.fail "binary loadgen did not finish"
    else begin
      ignore (Server.poll srv ~timeout:0.001);
      Loadgen.poll lg ~timeout:0.001;
      drive (n - 1)
    end
  in
  drive 100_000;
  let r = Loadgen.report lg in
  Alcotest.(check int) "no protocol errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "every event acknowledged" (4 * 64) r.Loadgen.lines_ok;
  Alcotest.(check bool) "work frames triggered" true (r.Loadgen.triggered > 0);
  Alcotest.(check int) "commits" (4 * 4) r.Loadgen.commits

(* ---------------------- pipelined binary differential (reply ordering) *)

(* The pipelining differential: 160 seeded scenarios, each a random mix
   of binary EVENTs, BATCHes, PINGs carrying unique tokens, COMMITs and
   ABORTs — sent as ONE burst, [pipeline]-style, with no reads in
   between.  The replies must arrive strictly in send order and match,
   payload for payload, a reference that drives [Engine.ingest_event]
   directly: the PING tokens prove no reply jumped the queue, the
   TRIGGERED lists prove the events hit the rule engine identically.
   Half the seeds run the worker-domain path, half run inline. *)
type diff_op =
  | D_event
  | D_batch of int
  | D_ping of string
  | D_commit
  | D_abort

let diff_scenario rng n =
  let ops = ref [] and open_events = ref 0 in
  for i = 0 to n - 1 do
    let op =
      match Random.State.int rng 10 with
      | 0 | 1 | 2 | 3 -> D_event
      | 4 | 5 -> D_batch (1 + Random.State.int rng 4)
      | 6 | 7 -> D_ping (Printf.sprintf "tok-%d" i)
      | 8 when !open_events > 0 -> D_commit
      | 9 when !open_events > 0 -> D_abort
      | _ -> D_event
    in
    (match op with
    | D_event -> incr open_events
    | D_batch k -> open_events := !open_events + k
    | D_commit | D_abort -> open_events := 0
    | D_ping _ -> ());
    ops := op :: !ops
  done;
  (List.rev !ops, !open_events > 0)

(* The direct-drive reference: the same record stream through
   [Engine.ingest_event] on a fresh engine, replies synthesized per the
   documented semantics. *)
let diff_reference ops =
  let interp = Interp.create () in
  (match Interp.run_string interp tick_boot_script with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (match Engine.commit (Interp.engine interp) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "reference boot commit");
  let engine = Interp.engine interp in
  let executed = ref [] in
  Engine.set_on_execution engine (fun name -> executed := name :: !executed);
  let etype =
    match Event_type.of_string "tick" with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  let oid = ref 0 in
  let ingest () =
    let this = !oid in
    incr oid;
    Engine.ingest_event engine ~etype ~oid:(Ident.Oid.of_int this)
  in
  let executed_reply () =
    match List.rev !executed with
    | [] -> Protocol.Ok_ ""
    | rules -> Protocol.Triggered rules
  in
  List.map
    (fun op ->
      executed := [];
      match op with
      | D_ping tok -> Protocol.Ok_ ("pong " ^ tok)
      | D_event -> (
          match ingest () with
          | Ok () -> executed_reply ()
          | Error e -> Protocol.Err ("engine", Fmt.str "%a" Engine.pp_error e))
      | D_batch k ->
          let rec apply i =
            if i = k then executed_reply ()
            else
              match ingest () with
              | Ok () -> apply (i + 1)
              | Error e ->
                  Protocol.Err ("engine", Fmt.str "%a" Engine.pp_error e)
          in
          apply 0
      | D_commit -> (
          match Engine.commit engine with
          | Ok () -> executed_reply ()
          | Error e ->
              Engine.abort engine;
              Protocol.Err ("engine", Fmt.str "%a" Engine.pp_error e))
      | D_abort ->
          Engine.abort engine;
          Protocol.Ok_ "aborted")
    ops

let run_diff_seed ~domains seed =
  let ops, tx_open = diff_scenario (Random.State.make [| seed |]) 30 in
  let expected = diff_reference ops in
  with_server
    ~config:
      {
        Server.default_config with
        boot_script = Some tick_boot_script;
        engines = 1;
        domains;
      }
  @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  send srv c (Protocol.Etype { id = 0; name = "tick" });
  ignore (expect_ok srv c "etype");
  (* The whole scenario in one burst: no reads until everything is sent. *)
  let burst = Buffer.create 1024 in
  let oid = ref 0 in
  let next_oid () =
    let this = !oid in
    incr oid;
    this
  in
  List.iter
    (fun op ->
      let payload =
        match op with
        | D_ping tok -> Protocol.command_to_payload (Protocol.Ping tok)
        | D_event ->
            Protocol.encode_event ~etype_id:0 ~oid:(next_oid ()) ~timestamp:0
        | D_batch k ->
            Protocol.encode_batch
              (List.init k (fun _ ->
                   { Protocol.etype_id = 0; oid = next_oid (); timestamp = 0 }))
        | D_commit -> Protocol.command_to_payload Protocol.Commit
        | D_abort -> Protocol.command_to_payload Protocol.Abort
      in
      Buffer.add_string burst (Protocol.frame_exn ~max_frame:mf payload))
    ops;
  send_raw srv c (Buffer.contents burst);
  (* Replies come back strictly in send order. *)
  List.iteri
    (fun i want ->
      match recv srv c with
      | `Reply got ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d step %d" seed i)
            (Protocol.reply_to_payload want)
            (Protocol.reply_to_payload got)
      | `Eof -> Alcotest.failf "seed %d step %d: connection closed" seed i
      | `Timeout -> Alcotest.failf "seed %d step %d: no reply" seed i)
    expected;
  if tx_open then begin
    send srv c Protocol.Abort;
    ignore (expect_ok srv c "final abort")
  end;
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit");
  expect_eof srv c

let test_differential_binary_pipelined () =
  for seed = 0 to 159 do
    (* Even seeds inline on the reactor, odd seeds through a worker
       domain: the reply-order invariant holds on both execution paths. *)
    run_diff_seed ~domains:(if seed mod 2 = 0 then Some 0 else None) seed
  done

(* --------------------------------------------------- live subscriptions *)

let sub_spec_text = "ON { tick } DO at({ tick }, X, T)"

let test_notify_payload_roundtrip () =
  let n =
    {
      Protocol.sub = 3;
      at = 17;
      bindings = [ [ ("X", "o1"); ("T", "5") ]; [ ("X", "o2"); ("T", "9") ] ];
    }
  in
  List.iter
    (fun binary ->
      let payload = Protocol.notify_to_payload ~binary n in
      Alcotest.(check bool) "notify classified" true
        (Protocol.is_notify_payload payload);
      (match Protocol.notify_of_payload payload with
      | Ok (`Notify n') ->
          Alcotest.(check bool) "notify round trip" true (n = n')
      | Ok (`Gap _) -> Alcotest.fail "notify decoded as a gap"
      | Error msg -> Alcotest.fail msg);
      let gap = Protocol.notify_gap_to_payload ~binary ~sub:9 ~dropped:42 in
      Alcotest.(check bool) "gap classified" true
        (Protocol.is_notify_payload gap);
      match Protocol.notify_of_payload gap with
      | Ok (`Gap (9, 42)) -> ()
      | Ok _ -> Alcotest.fail "gap decoded wrong"
      | Error msg -> Alcotest.fail msg)
    [ false; true ];
  (* Replies and commands are never classified as pushes. *)
  Alcotest.(check bool) "reply is not a push" false
    (Protocol.is_notify_payload (Protocol.reply_to_payload (Protocol.Ok_ "x")));
  Alcotest.(check bool) "command is not a push" false
    (Protocol.is_notify_payload (Protocol.command_to_payload Protocol.Quit))

(* Like [recv], but total over subscription pushes: each frame is
   classified with [is_notify_payload] before reply parsing — exactly
   what a real subscriber with commands in flight must do. *)
let recv_any ?(polls = 400) srv c =
  let take () =
    match Protocol.decode ~max_frame:mf c.buf ~off:0 ~len:c.len with
    | Protocol.Frame (payload, used) ->
        Bytes.blit c.buf used c.buf 0 (c.len - used);
        c.len <- c.len - used;
        if Protocol.is_notify_payload payload then (
          match Protocol.notify_of_payload payload with
          | Ok (`Notify n) -> Some (`Notify (n, payload.[0] < '\x20'))
          | Ok (`Gap (sub, dropped)) -> Some (`Gap (sub, dropped))
          | Error msg -> Alcotest.failf "unparsable notify %S: %s" payload msg)
        else (
          match Protocol.reply_of_payload payload with
          | Ok r -> Some (`Reply r)
          | Error msg -> Alcotest.failf "unparsable reply %S: %s" payload msg)
    | _ -> None
  in
  let rec go polls =
    match take () with
    | Some x -> x
    | None ->
        if polls <= 0 then `Timeout
        else begin
          ignore (Server.poll srv ~timeout:0.005);
          match client_read c with
          | `Eof -> ( match take () with Some x -> x | None -> `Eof)
          | `Read | `Nothing -> go (polls - 1)
        end
  in
  go polls

let expect_notify srv c what =
  match recv_any srv c with
  | `Notify (n, binary) -> (n, binary)
  | `Gap _ -> Alcotest.failf "%s: expected NOTIFY, got NOTIFY_GAP" what
  | `Reply r ->
      Alcotest.failf "%s: expected NOTIFY, got %s" what
        (Protocol.reply_to_payload r)
  | `Eof | `Timeout -> Alcotest.failf "%s: no NOTIFY" what

(* The full life of one subscription over a socket: HELLO advertises the
   feature, SUB registers, a committed trigger pushes NOTIFY before the
   commit reply, an abort pushes nothing, UNSUB tears down. *)
let test_sub_basic () =
  with_server ~config:{ Server.default_config with engines = 1 } @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  send srv c (Protocol.Hello Protocol.version);
  let info = expect_ok srv c "hello" in
  Alcotest.(check bool) "greeting advertises sub" true (contains_sub info "sub");
  send srv c (Protocol.Sub { id = 0; binary = false; spec = sub_spec_text });
  Alcotest.(check string) "sub ok" "" (expect_ok srv c "sub");
  Alcotest.(check int) "gauge sees it" 1
    (Session.Manager.subscription_count (Server.manager srv));
  (* A committed trigger: the rule executes (and is reported TRIGGERED
     like any other), then the commit point pushes the notify — in
     stream position before the commit's own reply. *)
  send srv c (Protocol.Event { etype = "tick"; oid = 7 });
  (match expect_triggered srv c "event" with
  | [ rule ] ->
      Alcotest.(check bool) "subscription rule namespace" true
        (String.length rule > 4 && String.sub rule 0 4 = "sub.")
  | rules -> Alcotest.failf "expected one rule, got %d" (List.length rules));
  send srv c Protocol.Commit;
  let n, binary = expect_notify srv c "commit notify" in
  Alcotest.(check bool) "text encoding" false binary;
  Alcotest.(check int) "sub id" 0 n.Protocol.sub;
  (match n.Protocol.bindings with
  | [ env ] ->
      Alcotest.(check (option string)) "X binds the oid" (Some "o7")
        (List.assoc_opt "X" env);
      Alcotest.(check bool) "T binds an instant" true
        (match List.assoc_opt "T" env with
        | Some t -> int_of_string_opt t <> None
        | None -> false)
  | envs -> Alcotest.failf "expected one env, got %d" (List.length envs));
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ _) -> ()
  | _ -> Alcotest.fail "commit reply after the notify");
  (* An aborted transaction pushes nothing: the next frame after the
     abort's reply is the ping echo, not a phantom notify. *)
  send srv c (Protocol.Event { etype = "tick"; oid = 8 });
  ignore (expect_triggered srv c "aborted event");
  send srv c Protocol.Abort;
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ "aborted") -> ()
  | _ -> Alcotest.fail "abort reply");
  send srv c (Protocol.Ping "seal");
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ "pong seal") -> ()
  | `Notify _ -> Alcotest.fail "phantom notify after abort"
  | _ -> Alcotest.fail "ping echo");
  (* UNSUB: the rule leaves the engine — no TRIGGERED, no notify. *)
  send srv c (Protocol.Unsub { id = 0 });
  ignore (expect_ok srv c "unsub");
  Alcotest.(check int) "gauge back to zero" 0
    (Session.Manager.subscription_count (Server.manager srv));
  send srv c (Protocol.Event { etype = "tick"; oid = 9 });
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ _) -> ()
  | `Reply (Protocol.Triggered _) -> Alcotest.fail "unsubscribed rule fired"
  | _ -> Alcotest.fail "event after unsub");
  send srv c Protocol.Commit;
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ _) -> ()
  | `Notify _ -> Alcotest.fail "notify after unsub"
  | _ -> Alcotest.fail "commit after unsub");
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

(* SUB ... BIN negotiates the binary NOTIFY encoding per subscription. *)
let test_sub_binary_encoding () =
  with_server ~config:{ Server.default_config with engines = 1 } @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  send srv c (Protocol.Sub { id = 3; binary = true; spec = sub_spec_text });
  ignore (expect_ok srv c "sub bin");
  send srv c (Protocol.Event { etype = "tick"; oid = 11 });
  ignore (expect_triggered srv c "event");
  send srv c Protocol.Commit;
  let n, binary = expect_notify srv c "binary notify" in
  Alcotest.(check bool) "binary encoding" true binary;
  Alcotest.(check int) "sub id" 3 n.Protocol.sub;
  (match n.Protocol.bindings with
  | [ env ] ->
      Alcotest.(check (option string)) "X binding" (Some "o11")
        (List.assoc_opt "X" env)
  | envs -> Alcotest.failf "expected one env, got %d" (List.length envs));
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ _) -> ()
  | _ -> Alcotest.fail "commit reply");
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

(* Every refusal the SUB/UNSUB state machine owes: parse errors, the id
   range, duplicate registration, transaction-boundary enforcement, and
   — the regression this suite pins — a second UNSUB of the same id is a
   clean [ERR state], never a crash or a hang. *)
let test_sub_errors () =
  with_boot_server @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  ignore
    (send srv c (Protocol.Sub { id = 0; binary = false; spec = "garbage" });
     expect_err srv c "parse" "spec without ON");
  ignore
    (send srv c (Protocol.Sub { id = 0; binary = false; spec = "ON { tick" });
     expect_err srv c "parse" "unterminated event expr");
  ignore
    (send srv c (Protocol.Sub { id = 0; binary = false; spec = "ON { tick } DO" });
     expect_err srv c "parse" "empty DO");
  ignore
    (send srv c (Protocol.Sub { id = 0; binary = false; spec = "ON { tick } X" });
     expect_err srv c "parse" "trailing input");
  (* Out-of-range ids are protocol errors, raw on the wire because the
     typed constructor cannot express them. *)
  send_raw srv c (Protocol.frame_exn ~max_frame:mf "SUB 70000 ON { tick }");
  ignore (expect_err srv c "proto" "sub id over the cap");
  send_raw srv c (Protocol.frame_exn ~max_frame:mf "UNSUB -1");
  ignore (expect_err srv c "proto" "negative unsub id");
  (* Duplicate registration. *)
  send srv c (Protocol.Sub { id = 1; binary = false; spec = "ON { tick }" });
  ignore (expect_ok srv c "sub 1");
  send srv c (Protocol.Sub { id = 1; binary = false; spec = "ON { tick }" });
  ignore (expect_err srv c "state" "duplicate sub id");
  (* Subscription changes only at a transaction boundary. *)
  send srv c (Protocol.Line "create item(n = 1)");
  ignore (expect_triggered srv c "open a transaction");
  send srv c (Protocol.Sub { id = 2; binary = false; spec = "ON { tick }" });
  ignore (expect_err srv c "state" "SUB inside a transaction");
  send srv c (Protocol.Unsub { id = 1 });
  ignore (expect_err srv c "state" "UNSUB inside a transaction");
  send srv c Protocol.Abort;
  ignore (expect_ok srv c "abort");
  (* The double-UNSUB regression: the second is [ERR state], the
     connection lives on. *)
  send srv c (Protocol.Unsub { id = 1 });
  ignore (expect_ok srv c "unsub");
  send srv c (Protocol.Unsub { id = 1 });
  ignore (expect_err srv c "state" "double unsub");
  send srv c (Protocol.Unsub { id = 42 });
  ignore (expect_err srv c "state" "never-registered unsub");
  send srv c (Protocol.Ping "alive");
  Alcotest.(check string) "connection survived" "pong alive"
    (expect_ok srv c "ping");
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit")

(* The slow-consumer policy, deterministically: [notify_queue = 2] and
   [high_water = 0] (any pending output parks further pushes in the
   bounded queue), then five commits land in one reactor turn.  The
   first notify goes straight out; of the four parked, the two oldest
   are shed; the subscriber's stream is NOTIFY, NOTIFY_GAP(2) in the
   shed position, then the two survivors — delivered + dropped accounts
   for every commit. *)
let test_sub_overflow_gap () =
  with_server
    ~config:
      {
        Server.default_config with
        engines = 1;
        domains = Some 0 (* inline: the burst lands in one turn *);
        notify_queue = 2;
        high_water = 0;
      }
  @@ fun srv ->
  let s = connect srv in
  let i = connect srv in
  Fun.protect
    ~finally:(fun () ->
      close_client s;
      close_client i)
  @@ fun () ->
  hello srv s;
  send srv s (Protocol.Sub { id = 0; binary = false; spec = sub_spec_text });
  ignore (expect_ok srv s "sub");
  hello srv i;
  (* Five commit cycles in one burst: the server reads them in one
     turn, so the subscriber's output pauses after the first push. *)
  let burst = Buffer.create 256 in
  for oid = 0 to 4 do
    Buffer.add_string burst
      (Protocol.frame_exn ~max_frame:mf
         (Protocol.command_to_payload (Protocol.Event { etype = "tick"; oid })));
    Buffer.add_string burst
      (Protocol.frame_exn ~max_frame:mf
         (Protocol.command_to_payload Protocol.Commit))
  done;
  send_raw srv i (Buffer.contents burst);
  for k = 0 to 4 do
    ignore (expect_triggered srv i (Printf.sprintf "event %d" k));
    ignore (expect_ok srv i (Printf.sprintf "commit %d" k))
  done;
  (* A ping seals the stream: its echo force-drains everything owed. *)
  send srv s (Protocol.Ping "seal");
  let rec collect acc =
    match recv_any srv s with
    | `Reply (Protocol.Ok_ "pong seal") -> List.rev acc
    | `Reply r ->
        Alcotest.failf "unexpected reply %s" (Protocol.reply_to_payload r)
    | `Notify (n, _) -> collect (`N n :: acc)
    | `Gap (sub, dropped) -> collect (`G (sub, dropped) :: acc)
    | `Eof | `Timeout -> Alcotest.fail "stream ended before the seal"
  in
  let stream = collect [] in
  let xs = function
    | `N n -> (
        match n.Protocol.bindings with
        | [ env ] -> ( match List.assoc_opt "X" env with Some x -> x | None -> "?")
        | _ -> "?")
    | `G _ -> "gap"
  in
  Alcotest.(check (list string))
    "drop-oldest stream: first out, gap in shed position, survivors"
    [ "o0"; "gap"; "o3"; "o4" ]
    (List.map xs stream);
  (match List.nth stream 1 with
  | `G (0, 2) -> ()
  | `G (sub, dropped) ->
      Alcotest.failf "gap accounts sub %d dropped %d, want sub 0 dropped 2" sub
        dropped
  | `N _ -> Alcotest.fail "expected the gap frame second");
  let delivered =
    List.length (List.filter (function `N _ -> true | `G _ -> false) stream)
  in
  let dropped =
    List.fold_left
      (fun acc -> function `G (_, d) -> acc + d | `N _ -> acc)
      0 stream
  in
  Alcotest.(check int) "every commit delivered or gapped" 5
    (delivered + dropped);
  (* The STATS text reports the subsystem's counters. *)
  send srv s Protocol.Stats;
  let stats = expect_ok srv s "stats" in
  Alcotest.(check bool) "stats carries the subs line" true
    (contains_sub stats "subs:")

(* An abruptly vanished subscriber leaves nothing behind: the registry
   empties immediately and the dynamic rule leaves the engine, so later
   commits neither fire it nor notify anyone. *)
let test_sub_disconnect_residue () =
  with_server ~config:{ Server.default_config with engines = 1 } @@ fun srv ->
  let s = connect srv in
  hello srv s;
  send srv s (Protocol.Sub { id = 0; binary = false; spec = sub_spec_text });
  ignore (expect_ok srv s "sub");
  Alcotest.(check int) "one live subscription" 1
    (Session.Manager.subscription_count (Server.manager srv));
  close_client s;
  let rec settle n =
    if n = 0 then Alcotest.fail "disconnect never noticed"
    else if
      Session.Manager.subscription_count (Server.manager srv) > 0
      || Server.active_conns srv > 0
    then begin
      ignore (Server.poll srv ~timeout:0.005);
      settle (n - 1)
    end
  in
  settle 1000;
  let i = connect srv in
  Fun.protect ~finally:(fun () -> close_client i) @@ fun () ->
  hello srv i;
  send srv i (Protocol.Event { etype = "tick"; oid = 1 });
  (match recv_any srv i with
  | `Reply (Protocol.Ok_ _) -> ()
  | `Reply (Protocol.Triggered rules) ->
      Alcotest.failf "dead subscriber's rule still fires: %s"
        (String.concat "," rules)
  | _ -> Alcotest.fail "event reply");
  send srv i Protocol.Commit;
  (match recv_any srv i with
  | `Reply (Protocol.Ok_ _) -> ()
  | `Notify _ -> Alcotest.fail "notify to a dead subscriber"
  | _ -> Alcotest.fail "commit reply");
  send srv i Protocol.Quit;
  ignore (expect_ok srv i "quit")

(* The loadgen's push side, in process: ingesters and subscribers drive
   one server in this thread.  Every committed event is one activation
   fanned out to every subscriber, and the delivery guarantee makes the
   accounting exact: delivered + shed = events x subscribers. *)
let test_loadgen_subscribe () =
  with_server ~config:{ Server.default_config with engines = 1 } @@ fun srv ->
  let conns = 4 and lines = 20 and subscribers = 2 in
  let lg =
    match
      Loadgen.create
        {
          Loadgen.default_config with
          Loadgen.port = Server.port srv;
          conns;
          lines;
          commit_every = 5;
          binary = true;
          subscribe = subscribers;
        }
    with
    | Ok lg -> lg
    | Error msg -> Alcotest.fail msg
  in
  let rec drive n =
    if Loadgen.finished lg then ()
    else if n = 0 then Alcotest.fail "subscription loadgen did not finish"
    else begin
      ignore (Server.poll srv ~timeout:0.001);
      Loadgen.poll lg ~timeout:0.001;
      drive (n - 1)
    end
  in
  drive 100_000;
  let r = Loadgen.report lg in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "every event answered" (conns * lines) r.Loadgen.lines_ok;
  Alcotest.(check int) "subscribers reported" subscribers r.Loadgen.subscribers;
  Alcotest.(check int) "every activation delivered or gapped"
    (conns * lines * subscribers)
    (r.Loadgen.notifies + r.Loadgen.gap_dropped);
  Alcotest.(check bool) "latency samples are real" true (r.Loadgen.nlat_max_ns > 0);
  (* Nothing held the registry open. *)
  Alcotest.(check int) "registry empty after the run" 0
    (Session.Manager.subscription_count (Server.manager srv))

(* The notify-stream differential: the socket subscriber's NOTIFY
   sequence must equal the committed activation log of the same rule
   driven directly through the engine — same activation instants, same
   bindings, same order — across commits, aborts and batches, inline
   and through a worker domain. *)
let sub_diff_reference ops =
  let interp = Interp.create () in
  let engine = Interp.engine interp in
  let spec =
    match Lang_parser.parse_subscription sub_spec_text with
    | Error msg -> Alcotest.fail msg
    | Ok (event, condition) ->
        {
          Rule.name = "ref";
          target = None;
          event;
          condition;
          action = [];
          coupling = Rule.Immediate;
          consumption = Rule.Consuming;
          priority = 0;
        }
  in
  (match Engine.define_dynamic engine spec with
  | Ok _ -> ()
  | Error (`Rule_error msg) -> Alcotest.fail msg);
  Engine.watch_rule engine "ref";
  let etype =
    match Event_type.of_string "tick" with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  let oid = ref 0 in
  let ingest () =
    let this = !oid in
    incr oid;
    match Engine.ingest_event engine ~etype ~oid:(Ident.Oid.of_int this) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "reference ingest: %a" Engine.pp_error e
  in
  let acc = ref [] in
  let drain () =
    List.iter
      (fun (a : Engine.activation) ->
        acc := (Time.to_int a.act_at, a.act_bindings) :: !acc)
      (Engine.drain_activations engine)
  in
  List.iter
    (fun op ->
      match op with
      | D_ping _ -> ()
      | D_event -> ingest ()
      | D_batch k -> for _ = 1 to k do ingest () done
      | D_commit ->
          (match Engine.commit engine with
          | Ok () -> ()
          | Error _ -> Engine.abort engine);
          drain ()
      | D_abort -> Engine.abort engine)
    ops;
  List.rev !acc

let run_sub_diff_seed ~domains seed =
  let ops, tx_open = diff_scenario (Random.State.make [| 4096 + seed |]) 30 in
  let expected = sub_diff_reference ops in
  let binary = seed mod 4 < 2 in
  with_server
    ~config:{ Server.default_config with engines = 1; domains }
  @@ fun srv ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
  hello srv c;
  send srv c (Protocol.Etype { id = 0; name = "tick" });
  ignore (expect_ok srv c "etype");
  send srv c (Protocol.Sub { id = 5; binary; spec = sub_spec_text });
  ignore (expect_ok srv c "sub");
  let burst = Buffer.create 1024 in
  let oid = ref 0 in
  let next_oid () =
    let this = !oid in
    incr oid;
    this
  in
  List.iter
    (fun op ->
      let payload =
        match op with
        | D_ping tok -> Protocol.command_to_payload (Protocol.Ping tok)
        | D_event ->
            Protocol.encode_event ~etype_id:0 ~oid:(next_oid ()) ~timestamp:0
        | D_batch k ->
            Protocol.encode_batch
              (List.init k (fun _ ->
                   { Protocol.etype_id = 0; oid = next_oid (); timestamp = 0 }))
        | D_commit -> Protocol.command_to_payload Protocol.Commit
        | D_abort -> Protocol.command_to_payload Protocol.Abort
      in
      Buffer.add_string burst (Protocol.frame_exn ~max_frame:mf payload))
    ops;
  send_raw srv c (Buffer.contents burst);
  (* Every op gets exactly one reply; notifies interleave ahead of the
     commit replies that produced them. *)
  let notifies = ref [] and replies = ref 0 in
  let want_replies = List.length ops in
  while !replies < want_replies do
    match recv_any srv c with
    | `Reply _ -> incr replies
    | `Notify (n, got_binary) ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: negotiated encoding" seed)
          binary got_binary;
        Alcotest.(check int) (Printf.sprintf "seed %d: sub id" seed) 5
          n.Protocol.sub;
        notifies := (n.Protocol.at, n.Protocol.bindings) :: !notifies
    | `Gap _ -> Alcotest.failf "seed %d: unexpected gap" seed
    | `Eof -> Alcotest.failf "seed %d: connection closed" seed
    | `Timeout -> Alcotest.failf "seed %d: reply stream stalled" seed
  done;
  if tx_open then begin
    send srv c Protocol.Abort;
    match recv_any srv c with
    | `Reply (Protocol.Ok_ "aborted") -> ()
    | `Notify _ -> Alcotest.failf "seed %d: notify from the final abort" seed
    | _ -> Alcotest.failf "seed %d: final abort reply" seed
  end;
  send srv c (Protocol.Unsub { id = 5 });
  (match recv_any srv c with
  | `Reply (Protocol.Ok_ _) -> ()
  | `Notify _ -> Alcotest.failf "seed %d: notify after the reply drain" seed
  | _ -> Alcotest.failf "seed %d: unsub reply" seed);
  send srv c Protocol.Quit;
  ignore (expect_ok srv c "quit");
  expect_eof srv c;
  let got = List.rev !notifies in
  let render l =
    String.concat ";"
      (List.map
         (fun (at, envs) ->
           Printf.sprintf "%d:%s" at
             (String.concat "|"
                (List.map
                   (fun env ->
                     String.concat ","
                       (List.map (fun (v, x) -> v ^ "=" ^ x) env))
                   envs)))
         l)
  in
  Alcotest.(check string)
    (Printf.sprintf "seed %d: notify stream equals the activation log" seed)
    (render expected) (render got)

let test_sub_notify_differential () =
  for seed = 0 to 159 do
    run_sub_diff_seed ~domains:(if seed mod 2 = 0 then Some 0 else None) seed
  done

let suite =
  [
    Alcotest.test_case "payload round trip" `Quick test_payload_roundtrip;
    Alcotest.test_case "frame decoding is total" `Quick test_decode_frames;
    Alcotest.test_case "event codec rejects bad numbers" `Quick
      test_event_codec_rejects_bad_numbers;
    Alcotest.test_case "binary frames round trip (1000 cases)" `Quick
      test_binary_roundtrip;
    Alcotest.test_case "binary decode is total (1000 payloads)" `Quick
      test_binary_decode_totality;
    Alcotest.test_case "decode_view window aliasing" `Quick
      test_decode_view_alias_safety;
    Alcotest.test_case "manager queueing and overflow" `Quick
      test_manager_queueing_and_overflow;
    Alcotest.test_case "hello key re-pins the session" `Quick
      test_manager_hello_key_repin;
    Alcotest.test_case "socket round trip" `Quick test_socket_roundtrip;
    Alcotest.test_case "protocol errors keep the connection" `Quick
      test_socket_protocol_errors;
    Alcotest.test_case "oversized frame closes" `Quick
      test_socket_oversized_frame_closes;
    Alcotest.test_case "torn frame completes" `Quick test_socket_torn_frame;
    Alcotest.test_case "wrong version closes" `Quick
      test_socket_wrong_version_closes;
    Alcotest.test_case "shard transactions serialize FIFO" `Quick
      test_socket_shard_fifo;
    Alcotest.test_case "backpressure on a slow reader" `Quick
      test_socket_backpressure_slow_reader;
    Alcotest.test_case "idle timeout" `Quick test_socket_idle_timeout;
    Alcotest.test_case "admission cap rejects" `Quick
      test_socket_max_conns_rejects;
    Alcotest.test_case "graceful drain, journals replay" `Quick
      test_socket_drain_and_recover;
    Alcotest.test_case "keyed sessions across worker domains" `Quick
      test_socket_multidomain;
    Alcotest.test_case "in-process loadgen" `Quick test_loadgen_in_process;
    Alcotest.test_case "differential: socket vs direct" `Quick
      test_differential_socket_vs_direct;
    Alcotest.test_case "binary ingestion over a socket" `Quick
      test_socket_binary_ingest;
    Alcotest.test_case "binary protocol errors keep the connection" `Quick
      test_socket_binary_errors;
    Alcotest.test_case "pipelined binary loadgen" `Quick
      test_loadgen_binary_pipelined;
    Alcotest.test_case "differential: pipelined binary, 160 seeds" `Quick
      test_differential_binary_pipelined;
    Alcotest.test_case "notify payloads round trip" `Quick
      test_notify_payload_roundtrip;
    Alcotest.test_case "subscription lifecycle over a socket" `Quick
      test_sub_basic;
    Alcotest.test_case "binary notify encoding" `Quick
      test_sub_binary_encoding;
    Alcotest.test_case "subscription errors and double UNSUB" `Quick
      test_sub_errors;
    Alcotest.test_case "notify overflow sheds into a gap" `Quick
      test_sub_overflow_gap;
    Alcotest.test_case "disconnect leaves no subscription residue" `Quick
      test_sub_disconnect_residue;
    Alcotest.test_case "loadgen subscribers count every push" `Quick
      test_loadgen_subscribe;
    Alcotest.test_case "differential: notify stream, 160 seeds" `Quick
      test_sub_notify_differential;
  ]
