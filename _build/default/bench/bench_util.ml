(* Timing helpers and shared workload builders for the experiment
   harness.  Wall-clock tables use the monotonic clock; the [micro] module
   additionally runs Bechamel for statistically analyzed micro-timings. *)

open Core

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* Times [f] repeated until [min_time_ns] elapsed (at least [min_runs]),
   returning ns per run. *)
let time_ns ?(min_time_ns = 5e7) ?(min_runs = 3) f =
  (* Warm-up run (also forces any lazy initialization). *)
  ignore (f ());
  let start = now_ns () in
  let rec loop runs =
    ignore (f ());
    let elapsed = now_ns () -. start in
    if elapsed < min_time_ns || runs < min_runs then loop (runs + 1)
    else elapsed /. float_of_int runs
  in
  loop 1

(* Times one execution of [f] (for setups too slow to repeat). *)
let time_once_ns f =
  let start = now_ns () in
  let result = f () in
  (now_ns () -. start, result)

let print_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_note note = Printf.printf "%s\n" note

(* Replays a (type, oid-index) stream into a fresh event base. *)
let replay_stream stream =
  let eb = Event_base.create () in
  List.iter
    (fun (etype, oid) -> ignore (Event_base.record eb ~etype ~oid))
    stream;
  eb

(* Fixed seeds: every table in EXPERIMENTS.md is reproducible. *)
let seed_of_experiment = function
  | "e1" -> 101
  | "e2" -> 202
  | "e3" -> 303
  | "e4" -> 404
  | "e5" -> 505
  | "e6" -> 606
  | _ -> 7
