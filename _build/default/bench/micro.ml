(* Bechamel micro-benchmarks: one Test.make per experiment family, with
   OLS-estimated per-run times.  These complement the wall-clock tables of
   the other modules with statistically analyzed single-operation costs. *)

open Core
open Bechamel
open Toolkit

let make_ts_tests () =
  let prng = Prng.create ~seed:11 in
  let alphabet = Domain.abstract_alphabet 8 in
  let stream = Expr_gen.stream prng ~alphabet ~objects:64 ~length:10_000 in
  let eb = Bench_util.replay_stream stream in
  let at = Event_base.probe_now eb in
  let env = Ts.env eb ~window:(Window.all ~upto:at) in
  let env_alg = Ts.env ~style:Ts.Algebraic eb ~window:(Window.all ~upto:at) in
  let prim = Expr.prim (List.hd alphabet) in
  let boolean =
    Expr_gen.gen prng ~profile:Expr_gen.boolean_profile ~alphabet ~depth:4 ()
  in
  let inst =
    Expr.Inst
      (Expr.i_seq (Expr.I_prim (List.nth alphabet 0)) (Expr.I_prim (List.nth alphabet 1)))
  in
  [
    Test.make ~name:"e1/ts-primitive" (Staged.stage (fun () -> Ts.ts env ~at prim));
    Test.make ~name:"e1/ts-boolean-d4"
      (Staged.stage (fun () -> Ts.ts env ~at boolean));
    Test.make ~name:"e1/ts-boolean-d4-algebraic"
      (Staged.stage (fun () -> Ts.ts env_alg ~at boolean));
    Test.make ~name:"e4/ts-instance-lifted"
      (Staged.stage (fun () -> Ts.ts env ~at inst));
  ]

let make_optimizer_tests () =
  let prng = Prng.create ~seed:12 in
  let alphabet = Domain.abstract_alphabet 8 in
  let expr =
    Expr_gen.gen prng ~profile:Expr_gen.full_profile ~alphabet ~depth:5 ()
  in
  let relevance = Relevance.of_expr expr in
  let occurrence = List.hd alphabet in
  [
    Test.make ~name:"e2/derive-V(E)"
      (Staged.stage (fun () -> Simplify.v_of_expr expr));
    Test.make ~name:"e2/relevance-check"
      (Staged.stage (fun () -> Relevance.relevant_exact relevance ~occurrence));
  ]

let make_baseline_tests () =
  let prng = Prng.create ~seed:13 in
  let alphabet = Domain.abstract_alphabet 8 in
  let expr =
    Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth:4 ()
  in
  let tree = Tree_detector.create expr in
  let auto = Automaton.create expr in
  let clock = Core.Time.Clock.create () in
  let etype = List.hd alphabet in
  [
    Test.make ~name:"e3/tree-update"
      (Staged.stage (fun () ->
           Tree_detector.on_event tree ~etype
             ~timestamp:(Core.Time.Clock.next_event_instant clock)));
    Test.make ~name:"e3/automaton-step"
      (Staged.stage (fun () -> Automaton.on_event auto ~etype));
  ]

let make_parse_tests () =
  let src =
    "modify(show.quantity) + -(create(stockOrder) < \
     modify(stockOrder.delquantity)) , (modify(stock.minquantity) < \
     modify(stock.quantity))"
  in
  [
    Test.make ~name:"misc/parse-paper-expression"
      (Staged.stage (fun () -> Expr_parse.parse_exn src));
  ]

let run () =
  Bench_util.print_header "Micro-benchmarks (Bechamel, OLS estimates)";
  let tests =
    make_ts_tests () @ make_optimizer_tests () @ make_baseline_tests ()
    @ make_parse_tests ()
  in
  let grouped = Test.make_grouped ~name:"micro" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Pretty.table ~title:"estimated time per run"
      ~header:[ "benchmark"; "ns/run"; "r^2" ]
      ~aligns:[ Pretty.Left; Pretty.Right; Pretty.Right ]
      ()
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Pretty.ns_cell e
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      Pretty.add_row table [ name; est; r2 ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Pretty.print table
