(* E3: composite-event detection — Chimera's ts calculus (with and without
   the V(E) filter) against the related-work baselines: the Snoop-style
   incremental operator tree and the Ode-style lazily compiled automaton.

   All detectors observe the same stream and the same expression set, and
   follow the full rule lifecycle: when an expression activates, it is
   "considered" and its events consumed (calculus: the window restarts;
   tree/automaton: state reset), then detection continues.  The detections
   column is a cross-detector sanity check — consuming semantics is
   identical across all four, so the counts must agree. *)

open Core

type detector = {
  name : string;
  feed : Event_type.t -> Ident.Oid.t -> unit;
  detections : unit -> int;
}

let calculus_detector ~filtered exprs =
  let eb = Event_base.create () in
  let n = List.length exprs in
  let consumption = Array.make n Time.origin in
  let detections = ref 0 in
  let relevances = Array.of_list (List.map Relevance.of_expr exprs) in
  let exprs = Array.of_list exprs in
  let feed etype oid =
    ignore (Event_base.record eb ~etype ~oid);
    let at = Event_base.probe_now eb in
    Array.iteri
      (fun i e ->
        let relevant =
          (not filtered)
          || Relevance.relevant_endpoint relevances.(i) ~occurrence:etype
        in
        if relevant then begin
          let env =
            Ts.env eb ~window:(Window.make ~after:consumption.(i) ~upto:at)
          in
          if Ts.active env ~at e then begin
            incr detections;
            consumption.(i) <- at
          end
        end)
      exprs
  in
  {
    name = (if filtered then "chimera ts + V(E)" else "chimera ts (no filter)");
    feed;
    detections = (fun () -> !detections);
  }

(* The tree needs real timestamps; wrap with a local clock. *)
let tree_detector exprs =
  let trees = Array.of_list (List.map Tree_detector.create exprs) in
  let clock = Time.Clock.create () in
  let detections = ref 0 in
  {
    name = "snoop-style tree";
    feed =
      (fun etype _oid ->
        let stamp = Time.Clock.next_event_instant clock in
        Array.iter
          (fun t ->
            Tree_detector.on_event t ~etype ~timestamp:stamp;
            if Tree_detector.active t then begin
              incr detections;
              Tree_detector.reset t
            end)
          trees);
    detections = (fun () -> !detections);
  }

let automaton_detector exprs =
  let autos = Array.of_list (List.map Automaton.create exprs) in
  let detections = ref 0 in
  {
    name = "ode-style automaton";
    feed =
      (fun etype _oid ->
        Array.iter
          (fun a ->
            Automaton.on_event a ~etype;
            if Automaton.active a then begin
              incr detections;
              Automaton.reset a
            end)
          autos);
    detections = (fun () -> !detections);
  }

let run_workload ~title ~profile ~depth () =
  let prng = Prng.create ~seed:(Bench_util.seed_of_experiment "e3") in
  let alphabet = Domain.abstract_alphabet 12 in
  let exprs = Expr_gen.batch prng ~profile ~alphabet ~depth ~count:32 () in
  let stream = Expr_gen.stream prng ~alphabet ~objects:64 ~length:20_000 in
  let table =
    Pretty.table ~title
      ~header:[ "detector"; "ns/event (32 exprs)"; "events/s"; "detections" ]
      ~aligns:[ Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  let detectors =
    [
      (fun () -> calculus_detector ~filtered:false exprs);
      (fun () -> calculus_detector ~filtered:true exprs);
      (fun () -> tree_detector exprs);
      (fun () -> automaton_detector exprs);
    ]
  in
  List.iter
    (fun mk ->
      let d = mk () in
      let elapsed, () =
        Bench_util.time_once_ns (fun () ->
            List.iter (fun (etype, oid) -> d.feed etype oid) stream)
      in
      let per_event = elapsed /. float_of_int (List.length stream) in
      Pretty.add_row table
        [
          d.name;
          Pretty.ns_cell per_event;
          Printf.sprintf "%.0f" (1e9 /. per_event);
          string_of_int (d.detections ());
        ])
    detectors;
  Pretty.print table

(* Instance-oriented fragment: the calculus' lifted evaluation (per-object
   ots over the event-base indexes) against the per-object incremental
   tree. *)
let run_instance_workload () =
  let prng = Prng.create ~seed:1303 in
  let alphabet = Domain.abstract_alphabet 6 in
  let a = List.nth alphabet 0 and b = List.nth alphabet 1 in
  let exprs =
    [
      Expr.i_conj (Expr.I_prim a) (Expr.I_prim b);
      Expr.i_seq (Expr.I_prim a) (Expr.I_prim b);
      Expr.i_disj
        (Expr.i_seq (Expr.I_prim a) (Expr.I_prim b))
        (Expr.I_prim (List.nth alphabet 2));
    ]
  in
  let table =
    Pretty.table
      ~title:"instance-oriented detection (3 exprs, 10k events, 256 objects)"
      ~header:[ "detector"; "ns/event"; "events/s"; "detections" ]
      ~aligns:[ Pretty.Left; Pretty.Right; Pretty.Right; Pretty.Right ]
      ()
  in
  let stream = Expr_gen.stream prng ~alphabet ~objects:256 ~length:10_000 in
  (* Calculus: recompute the lifted ts after each event, consuming on
     activation. *)
  let calculus () =
    let eb = Event_base.create () in
    let consumption = Array.make (List.length exprs) Time.origin in
    let detections = ref 0 in
    let exprs = Array.of_list (List.map Expr.inst exprs) in
    let feed etype oid =
      ignore (Event_base.record eb ~etype ~oid);
      let at = Event_base.probe_now eb in
      Array.iteri
        (fun i e ->
          let env =
            Ts.env eb ~window:(Window.make ~after:consumption.(i) ~upto:at)
          in
          if Ts.active env ~at e then begin
            incr detections;
            consumption.(i) <- at
          end)
        exprs
    in
    ("chimera ts (instance lift)", feed, fun () -> !detections)
  in
  let inst_tree () =
    let detectors = Array.of_list (List.map Inst_tree_detector.create exprs) in
    let clock = Time.Clock.create () in
    let detections = ref 0 in
    let feed etype oid =
      let stamp = Time.Clock.next_event_instant clock in
      Array.iter
        (fun d ->
          Inst_tree_detector.on_event d ~etype ~oid ~timestamp:stamp;
          if Inst_tree_detector.active d then begin
            incr detections;
            Inst_tree_detector.reset d
          end)
        detectors
    in
    ("per-object tree", feed, fun () -> !detections)
  in
  List.iter
    (fun mk ->
      let name, feed, detections = mk () in
      let elapsed, () =
        Bench_util.time_once_ns (fun () ->
            List.iter (fun (etype, oid) -> feed etype oid) stream)
      in
      let per_event = elapsed /. float_of_int (List.length stream) in
      Pretty.add_row table
        [
          name;
          Pretty.ns_cell per_event;
          Printf.sprintf "%.0f" (1e9 /. per_event);
          string_of_int (detections ());
        ])
    [ calculus; inst_tree ];
  Pretty.print table

let e3 () =
  Bench_util.print_header
    "E3: detection cost - calculus vs related-work baselines (Section 2)";
  Bench_util.print_note
    "Negation- and instance-free expressions (the fragment every baseline\n\
     supports); 32 expressions monitored over one 20k-event stream, with\n\
     consume-on-detection (the detections column must agree).";
  run_workload ~title:"sequence-heavy expressions (depth 3, precedence-biased)"
    ~profile:Expr_gen.sequence_profile ~depth:3 ();
  run_workload ~title:"mixed boolean expressions (depth 4)"
    ~profile:Expr_gen.regular_profile ~depth:4 ();
  run_instance_workload ()

let all () = e3 ()
