bench/perf.ml: Array Bench_util Chimera_rules Core Domain Engine Event_base Expr Expr_gen Fmt List Memo Pretty Printf Prng Rule Rule_table Scenario Time Trigger_support Ts Window
