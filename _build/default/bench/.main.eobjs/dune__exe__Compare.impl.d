bench/compare.ml: Array Automaton Bench_util Core Domain Event_base Event_type Expr Expr_gen Ident Inst_tree_detector List Pretty Printf Prng Relevance Time Tree_detector Ts Window
