bench/figures.ml: Bench_util Core Derive Event_base Event_type Expr Expr_parse Fmt Ident List Occurrence Pretty Printf Simplify Time Ts Window
