bench/bench_util.ml: Core Event_base Int64 List Monotonic_clock Printf String
