bench/main.ml: Array Compare Figures List Micro Perf Printf String Sys
