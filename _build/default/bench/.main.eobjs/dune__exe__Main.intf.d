bench/main.mli:
