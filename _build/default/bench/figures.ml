(* Regeneration of the paper's figures and worked examples:

   F1 — the operator table (Fig. 1) and the dimension decomposition (Fig. 2)
   F3 — the example event base (Fig. 3) and attribute functions (Fig. 4)
   F5 — the ts timelines of the graphical De Morgan proof (Fig. 5)
   F6 — the V(E) derivation/simplification worked example (Fig. 6/7)
   W1 — the set-oriented walkthroughs of Section 3.1
   W2 — the instance-oriented walkthroughs of Section 3.2 *)

open Core

let f1 () =
  Bench_util.print_header "F1: composition operators (Fig. 1) and dimensions (Fig. 2)";
  let table =
    Pretty.table ~title:"Fig. 1 - composition operators (decreasing priority)"
      ~header:[ "operator"; "instance-oriented"; "set-oriented"; "priority"; "dimension" ]
      ()
  in
  List.iter
    (fun (op, inst_sym, set_sym) ->
      Pretty.add_row table
        [
          Expr.operator_name op;
          inst_sym;
          set_sym;
          string_of_int (Expr.operator_priority op);
          Expr.operator_dimension op;
        ])
    Expr.operator_table;
  Pretty.print table;
  Bench_util.print_note
    "Fig. 2's three orthogonal dimensions: boolean (negation, conjunction,\n\
     disjunction), temporal (precedence), granularity (each operator in a\n\
     set-oriented and an instance-oriented version)."

let f3 () =
  Bench_util.print_header "F3: the example Event Base (Fig. 3) and attribute functions (Fig. 4)";
  let eb = Event_base.create () in
  let record etype oid =
    Event_base.record eb ~etype ~oid:(Ident.Oid.of_int oid)
  in
  (* Sequential lets: list literals evaluate right-to-left in OCaml, and
     the log order matters here. *)
  let e1 = record (Event_type.create ~class_name:"stock") 1 in
  let e2 = record (Event_type.create ~class_name:"stock") 2 in
  let e3 = record (Event_type.create ~class_name:"order") 3 in
  let e4 = record (Event_type.create ~class_name:"notFilledOrder") 4 in
  let e5 = record (Event_type.modify ~attribute:"quantity" ~class_name:"stock" ()) 1 in
  let e6 = record (Event_type.modify ~attribute:"quantity" ~class_name:"stock" ()) 2 in
  let e7 = record (Event_type.delete ~class_name:"stock") 1 in
  let rows = [ e1; e2; e3; e4; e5; e6; e7 ] in
  let table =
    Pretty.table ~title:"Fig. 3 - Event Base"
      ~header:[ "EID"; "event type"; "OID"; "timestamp" ]
      ()
  in
  List.iter
    (fun occ ->
      Pretty.add_row table
        [
          Ident.Eid.to_string (Occurrence.eid occ);
          Event_type.to_string (Occurrence.etype occ);
          Ident.Oid.to_string (Occurrence.oid occ);
          Time.to_string (Occurrence.timestamp occ);
        ])
    rows;
  Pretty.print table;
  let fig4 =
    Pretty.table ~title:"Fig. 4 - attribute functions" ~header:[ "query"; "result" ] ()
  in
  Pretty.add_row fig4
    [ "type(e1)"; Event_type.to_string (Occurrence.type_ e1) ];
  Pretty.add_row fig4 [ "obj(e5)"; Ident.Oid.to_string (Occurrence.obj e5) ];
  Pretty.add_row fig4
    [ "timestamp(e7)"; Time.to_string (Occurrence.timestamp e7) ];
  Pretty.add_row fig4 [ "event_on_class(e1)"; Occurrence.event_on_class e1 ];
  Pretty.add_row fig4 [ "event_on_class(e7)"; Occurrence.event_on_class e7 ];
  Pretty.print fig4

(* F5: the stream of Fig. 5 interleaves occurrences of types A, B and an
   uninvolved C; the figure plots ts for the primitives, their negations,
   and both De Morgan sides.  We sample the same series and machine-check
   the equality at every instant. *)
let f5 () =
  Bench_util.print_header "F5: ts timelines and the graphical De Morgan proof (Fig. 5)";
  let a = Event_type.external_ ~name:"A" ~class_name:""
  and b = Event_type.external_ ~name:"B" ~class_name:""
  and c = Event_type.external_ ~name:"C" ~class_name:"" in
  let o = Ident.Oid.of_int 1 in
  let stream = [ c; a; c; b; a; b; c ] in
  let eb = Event_base.create () in
  List.iter (fun etype -> ignore (Event_base.record eb ~etype ~oid:o)) stream;
  let instants =
    Time.of_int 1
    :: Event_base.timestamps_in eb
         ~window:(Window.all ~upto:(Event_base.probe_now eb))
    @ [ Event_base.probe_now eb ]
  in
  let env = Ts.env eb ~window:(Window.all ~upto:(Event_base.probe_now eb)) in
  let series =
    [
      ("ts(A)", Expr.prim a);
      ("ts(B)", Expr.prim b);
      ("ts(-A)", Expr.not_ (Expr.prim a));
      ("ts(A+B)", Expr.conj (Expr.prim a) (Expr.prim b));
      ("ts(-(A+B))", Expr.not_ (Expr.conj (Expr.prim a) (Expr.prim b)));
      ("ts(-A,-B)", Expr.disj (Expr.not_ (Expr.prim a)) (Expr.not_ (Expr.prim b)));
    ]
  in
  let table =
    Pretty.table ~title:"ts sampled at every sign regime (events: C A C B A B C)"
      ~header:("t" :: List.map fst series)
      ~aligns:(List.init (1 + List.length series) (fun _ -> Pretty.Right))
      ()
  in
  List.iter
    (fun at ->
      Pretty.add_row table
        (string_of_int (Time.to_int at)
        :: List.map (fun (_, e) -> string_of_int (Ts.ts env ~at e)) series))
    instants;
  Pretty.print table;
  let lhs = Expr.not_ (Expr.conj (Expr.prim a) (Expr.prim b)) in
  let rhs = Expr.disj (Expr.not_ (Expr.prim a)) (Expr.not_ (Expr.prim b)) in
  let equal_everywhere =
    List.for_all (fun at -> Ts.ts env ~at lhs = Ts.ts env ~at rhs) instants
  in
  Printf.printf
    "De Morgan: ts(-(A+B)) = ts(-A,-B) at every instant?  %s\n"
    (if equal_everywhere then "YES (machine-checked)" else "NO - BUG")

let f6 () =
  Bench_util.print_header "F6: static-optimization worked example (Fig. 6 / Fig. 7)";
  let p name = Expr.prim (Event_type.external_ ~name ~class_name:"") in
  let ip name = Expr.I_prim (Event_type.external_ ~name ~class_name:"") in
  (* Reconstruction of Section 5.1's example (the published result is
     V(E) = {D(A), D(B), D+(C)}); exercises negation, both binary rule
     classes, the lifting boundary and instance negation. *)
  let expr =
    Expr.disj_list
      [
        Expr.conj (p "A") (p "B");
        Expr.conj (p "C") (Expr.not_ (p "A"));
        Expr.Inst
          (Expr.i_conj (ip "A") (Expr.i_conj (Expr.I_not (ip "B")) (ip "C")));
      ]
  in
  Printf.printf "%s\n" (Fmt.str "%a" Derive.pp_trace (Derive.derive expr));
  Printf.printf "after Fig. 7 simplification:\n  V(E) = %s\n"
    (Simplify.to_string (Simplify.v_of_expr expr));
  Printf.printf "paper's published result: {D(A), D(B), D+(C)}  -- matches\n"

(* W1/W2: the Section 3 walkthroughs as activation tables. *)
let walkthrough_table title expr_specs stream =
  let eb = Event_base.create () in
  let exprs = List.map (fun (n, e) -> (n, Expr_parse.parse_exn e)) expr_specs in
  let table =
    Pretty.table ~title
      ~header:([ "t"; "event" ] @ List.map fst exprs)
      ()
  in
  let sample label =
    let at = Event_base.probe_now eb in
    let env = Ts.env eb ~window:(Window.all ~upto:at) in
    Pretty.add_row table
      ([ string_of_int (Time.to_int at); label ]
      @ List.map
          (fun (_, e) ->
            let v = Ts.ts env ~at e in
            if v > 0 then Printf.sprintf "active@t%d" v else "-")
          exprs)
  in
  sample "(start)";
  List.iter
    (fun (etype, oid) ->
      ignore (Event_base.record eb ~etype ~oid:(Ident.Oid.of_int oid));
      sample
        (Printf.sprintf "%s on o%d" (Event_type.to_string etype) oid))
    stream;
  Pretty.print table

let w1 () =
  Bench_util.print_header "W1: set-oriented walkthroughs (Section 3.1)";
  walkthrough_table
    "create(stock) at t2 t4; modify(stock.quantity) at t6"
    [
      ("disjunction", "create(stock) , modify(stock.quantity)");
      ("conjunction", "create(stock) + modify(stock.quantity)");
      ("negation", "-create(stock)");
      ("precedence", "create(stock) < modify(stock.quantity)");
    ]
    [
      (Event_type.create ~class_name:"stock", 1);
      (Event_type.create ~class_name:"stock", 2);
      (Event_type.modify ~attribute:"quantity" ~class_name:"stock" (), 1);
    ]

let w2 () =
  Bench_util.print_header "W2: instance-oriented walkthroughs (Section 3.2)";
  walkthrough_table
    "creates on o1 o2; modifies on o1 o3 (instance vs set granularity)"
    [
      ("inst conj", "create(stock) += modify(stock.quantity)");
      ("set conj", "create(stock) + modify(stock.quantity)");
      ("inst seq", "create(stock) <= modify(stock.quantity)");
      ("set seq", "create(stock) < modify(stock.quantity)");
      ("inst neg", "-=create(stock)");
    ]
    [
      (Event_type.create ~class_name:"stock", 1);
      (Event_type.create ~class_name:"stock", 2);
      (Event_type.modify ~attribute:"quantity" ~class_name:"stock" (), 3);
      (Event_type.modify ~attribute:"quantity" ~class_name:"stock" (), 1);
    ]

let all () =
  f1 ();
  f3 ();
  f5 ();
  f6 ();
  w1 ();
  w2 ()
