(* SLA monitoring: periodic clock events (the HiPAC-style extension)
   composed with the calculus' negation — "the daily audit tick fired and
   no acknowledgement happened this transaction" — plus an escalation
   threshold rule.

   Each business day is one transaction (Chimera events are
   intra-transaction, so the deferred audit rule naturally scopes "quiet"
   to the day); the audit timer matures once per day.

     dune exec examples/sla_monitor.exe *)

open Core

let ok = function
  | Ok x -> x
  | Error e -> failwith (Fmt.str "%a" Engine.pp_error e)

let schema () =
  let s = Schema.create () in
  let define name attributes =
    match Schema.define s ~name ~attributes () with
    | Ok _ -> ()
    | Error e -> failwith (Fmt.str "%a" Schema.pp_error e)
  in
  define "ticket"
    [
      ("subject", Value.T_str);
      ("acknowledged", Value.T_bool);
      ("escalations", Value.T_int);
    ];
  define "page" [ ("ticket_ref", Value.T_oid) ];
  s

let lines_per_day = 4

let () =
  let engine = Engine.create (schema ()) in
  let audit = Engine.define_timer engine ~name:"audit" ~period_lines:lines_per_day in

  (* Rule 1 (deferred): at end of day, if the audit tick fired and nobody
     acknowledged anything all day (the quiet-period combinator), escalate
     every open unacknowledged ticket. *)
  let escalate =
    {
      Rule.name = "escalateQuietTickets";
      target = None;
      event =
        Derived.quiet_period ~tick:(Expr.prim audit)
          ~quiet:
            (Expr.prim
               (Event_type.modify ~attribute:"acknowledged" ~class_name:"ticket" ()));
      condition =
        [
          Condition.Range { var = "T"; class_name = "ticket" };
          Condition.Compare
            (Query.Cmp (Query.Eq, Query.Attr ("T", "acknowledged"),
               Query.Const (Value.Bool false)));
        ];
      action =
        [
          Action.A_modify
            {
              var = "T";
              attribute = "escalations";
              value =
                Query.Add
                  ( Query.Term (Query.Attr ("T", "escalations")),
                    Query.Term (Query.Const (Value.Int 1)) );
            };
        ];
      coupling = Rule.Deferred;
      consumption = Rule.Consuming;
      priority = 5;
    }
  in

  (* Rule 2 (immediate): an escalation crossing the threshold pages the
     on-call, once (paging flips no state, so the condition bounds it by
     checking the exact threshold). *)
  let page_on_escalation =
    {
      Rule.name = "pageOnEscalation";
      target = None;
      event = Expr_parse.parse_exn "modify(ticket.escalations)";
      condition =
        [
          Condition.Range { var = "T"; class_name = "ticket" };
          Condition.Occurred
            {
              expr = Expr_parse.parse_inst_exn "modify(ticket.escalations)";
              var = "T";
            };
          Condition.Compare
            (Query.Cmp (Query.Eq, Query.Attr ("T", "escalations"),
               Query.Const (Value.Int 2)));
        ];
      action =
        [
          Action.A_create
            {
              class_name = "page";
              attrs = [ ("ticket_ref", Query.Term (Query.Var "T")) ];
              bind = None;
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority = 3;
    }
  in
  let _ = Engine.define_exn engine escalate in
  let _ = Engine.define_exn engine page_on_escalation in

  (* Static safety check before running: the set cannot cascade forever
     (escalations come only from the deferred rule; paging creates no
     ticket events). *)
  Printf.printf "termination analysis: %s\n\n"
    (if Analysis.terminates [ escalate; page_on_escalation ] then "PROVED"
     else "cycles possible (runtime budget applies)");

  let new_ticket subject =
    Operation.Create
      {
        class_name = "ticket";
        attrs =
          [
            ("subject", Value.Str subject);
            ("acknowledged", Value.Bool false);
            ("escalations", Value.Int 0);
          ];
      }
  in
  let run_day ~label lines =
    let lines = lines @ List.init (lines_per_day - List.length lines) (fun _ -> []) in
    List.iter (fun ops -> ok (Engine.execute_line engine ops)) lines;
    ok (Engine.commit engine);
    Printf.printf "%s:\n" label;
    let store = Engine.store engine in
    List.iter
      (fun oid ->
        Printf.printf "  %s\n" (Fmt.str "%a" (Object_store.pp_object store) oid))
      (Object_store.extent store ~class_name:"ticket")
  in

  (* Day 1: two tickets arrive and the first is acknowledged the same day,
     so the audit finds activity and escalates nothing. *)
  ok
    (Engine.execute_line engine
       [ new_ticket "disk full"; new_ticket "slow query" ]);
  let store = Engine.store engine in
  let t1 = List.hd (Object_store.extent store ~class_name:"ticket") in
  run_day ~label:"day 1 (ack happened: quiet rule silent)"
    [
      [
        Operation.Modify
          { oid = t1; attribute = "acknowledged"; value = Value.Bool true };
      ];
    ];
  (* Days 2 and 3: total silence; each day's audit escalates the open
     ticket, and the second escalation pages the on-call. *)
  run_day ~label:"day 2 (quiet: first escalation)" [ [] ];
  run_day ~label:"day 3 (quiet: second escalation, page)" [ [] ];

  let pages = Object_store.extent store ~class_name:"page" in
  Printf.printf "\npages sent: %d\n" (List.length pages);
  let stats = Engine.statistics engine in
  Printf.printf "considerations: %d, executions: %d, events: %d\n"
    stats.Engine.considerations stats.Engine.executions stats.Engine.events
