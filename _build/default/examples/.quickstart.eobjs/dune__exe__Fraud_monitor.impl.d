examples/fraud_monitor.ml: Core Engine Interp List Object_store Printf
