examples/quickstart.mli:
