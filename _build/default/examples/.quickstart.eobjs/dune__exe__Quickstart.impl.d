examples/quickstart.ml: Core Engine Interp Printf Trigger_support
