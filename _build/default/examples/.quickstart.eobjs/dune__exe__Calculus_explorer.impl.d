examples/calculus_explorer.ml: Core Derive Event_base Event_type Expr Expr_parse Fmt Ident List Occurrence Pretty Printf Relevance Simplify String Sys Time Ts Window
