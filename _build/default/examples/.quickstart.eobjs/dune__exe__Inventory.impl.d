examples/inventory.ml: Action Condition Core Domain Engine Expr Expr_parse Fmt List Object_store Operation Printf Prng Rule Rule_table Scenario Trigger_support Value
