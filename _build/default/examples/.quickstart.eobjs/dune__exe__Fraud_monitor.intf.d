examples/fraud_monitor.mli:
