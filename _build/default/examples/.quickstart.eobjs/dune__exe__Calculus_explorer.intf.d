examples/calculus_explorer.mli:
