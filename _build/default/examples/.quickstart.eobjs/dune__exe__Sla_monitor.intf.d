examples/sla_monitor.mli:
