examples/inventory.mli:
