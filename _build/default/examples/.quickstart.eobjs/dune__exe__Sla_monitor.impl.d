examples/sla_monitor.ml: Action Analysis Condition Core Derived Engine Event_type Expr Expr_parse Fmt List Object_store Operation Printf Query Rule Schema Value
