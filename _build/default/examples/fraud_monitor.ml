(* Account monitoring: instance-oriented composition on a domain far from
   the paper's inventory — the point of the calculus is that the same four
   orthogonal operators express it.

   Policy: flag an account when a limit raise is followed by a withdrawal
   on the *same account* (instance precedence) while no verification was
   recorded for that account (instance negation).

     dune exec examples/fraud_monitor.exe *)

open Core

let script =
  {|
define class account (owner: string, balance: integer, flagged: boolean,
                      limit_raised: integer, verified: boolean);
define class alert (account_owner: string);

-- Instance-oriented: the limit raise and the withdrawal must hit the SAME
-- account, and that same account must lack a verification event.
define immediate trigger suspiciousSequence
  events { modify(account.balance) }
  condition occurred({ modify(account.limit_raised) <= modify(account.balance)
                       += -=modify(account.verified) }, A),
            A.flagged == false
  actions create alert(account_owner = A.owner), modify(A.flagged, true)
  preserving priority 9
end;

create account(owner = "alice", balance = 1000, flagged = false,
               limit_raised = 0, verified = false) as ALICE;
create account(owner = "bob", balance = 500, flagged = false,
               limit_raised = 0, verified = false) as BOB;

-- Alice raises her limit, then withdraws: suspicious.
modify ALICE.limit_raised = 1;
modify ALICE.balance = 100;

-- Bob raises his limit, gets verified, then withdraws: fine.
modify BOB.limit_raised = 1;
modify BOB.verified = true;
modify BOB.balance = 50;

show alert;
show account;
commit;
|}

let () =
  let interp = Interp.create () in
  (match Interp.run_string interp script with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("fraud_monitor failed: " ^ msg);
      exit 1);
  print_string (Interp.output interp);
  let alerts =
    Object_store.extent (Engine.store (Interp.engine interp)) ~class_name:"alert"
  in
  Printf.printf
    "\n%d alert(s): the unverified limit-raise-then-withdraw sequence was \
     caught on alice only.\n"
    (List.length alerts)
