-- Class migration events; run with:
--   dune exec bin/chimera.exe -- run examples/scripts/lifecycle.ch

define class item (name: string);
define class archived extends item (reason: string);
define class log (tag: string);

define immediate trigger onArchive
  events { specialize(archived) }
  actions create log(tag = "archived")
end;

create item(name = "widget") as W;
specialize W to archived;
modify W.reason = "obsolete";
show archived;
show log;
commit;
