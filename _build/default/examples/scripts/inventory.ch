-- Inventory management, script form; run with:
--   dune exec bin/chimera.exe -- run examples/scripts/inventory.ch

define class stock (quantity: integer, maxquantity: integer, minquantity: integer);
define class show (quantity: integer, stock_ref: oid);
define class stockOrder (delquantity: integer, stock_ref: oid);

define immediate trigger checkStockQty for stock
  events { create(stock) }
  condition stock(S), occurred({ create(stock) }, S), S.quantity > S.maxquantity
  actions modify(S.quantity, S.maxquantity)
  consuming priority 5
end;

define immediate trigger reorderOnLowStock
  events { create(stock) <= modify(stock.quantity) }
  condition stock(S), occurred({ create(stock) <= modify(stock.quantity) }, S),
            S.quantity < S.minquantity
  actions create stockOrder(delquantity = S.maxquantity - S.quantity, stock_ref = S)
  consuming priority 4
end;

define deferred trigger fulfilOrder
  events { create(stockOrder) <= modify(stockOrder.delquantity) }
  condition occurred({ create(stockOrder) <= modify(stockOrder.delquantity) }, O)
  actions delete O
  consuming priority 1
end;

create stock(quantity = 50, maxquantity = 100, minquantity = 10) as P;
modify P.quantity = 3;
show stockOrder;
commit;
show stockOrder;
