-- Timer-driven auditing with a negated subcondition; run with:
--   dune exec bin/chimera.exe -- run examples/scripts/audit.ch

define timer daily every 2;

define class account (owner: string, reviewed: boolean);
define class review (account_owner: string);

-- At each daily tick, file a review for accounts that have none yet.
define immediate trigger fileReviews
  events { daily(timer) }
  condition account(A),
            A.reviewed == false,
            absent( review(R), R.account_owner == A.owner )
  actions create review(account_owner = A.owner), modify(A.reviewed, true)
  consuming priority 1
end;

create account(owner = "ada", reviewed = false);
create account(owner = "bob", reviewed = false);
begin end;          -- second line: the timer matures and reviews are filed
show review;
show account;
commit;
