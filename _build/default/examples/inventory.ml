(* Inventory management on the paper's stock/show/order domain, driven
   through the programmatic API: composite events with instance-oriented
   precedence (reorder on create-then-drop), cascading rules, and the
   engine statistics after a burst of synthetic traffic.

     dune exec examples/inventory.exe *)

open Core

let ok = function
  | Ok x -> x
  | Error e -> failwith (Fmt.str "%a" Engine.pp_error e)

(* A third rule on top of the standard scenario: when a stock order is
   created and later its delivered quantity is modified (the paper's
   create(stockOrder) < modify(stockOrder.delquantity) motif), restock the
   referenced product. *)
let fulfil_order =
  {
    Rule.name = "fulfilOrder";
    target = None;
    event =
      Expr_parse.parse_exn
        "create(stockOrder) <= modify(stockOrder.delquantity)";
    condition =
      [
        Condition.Occurred
          {
            expr =
              Expr_parse.parse_inst_exn
                "create(stockOrder) <= modify(stockOrder.delquantity)";
            var = "O";
          };
      ];
    action = [ Action.A_delete { var = "O" } ];
    coupling = Rule.Deferred;
    consumption = Rule.Consuming;
    priority = 1;
  }

let () =
  let engine = Scenario.engine () in
  let _ = Engine.define_exn engine fulfil_order in
  Printf.printf "rules installed:\n";
  Rule_table.iter
    (fun rule ->
      Printf.printf "  %-18s on %s\n" (Rule.name rule)
        (Expr.to_string (Rule.spec rule).Rule.event))
    (Engine.rules engine);

  (* A hand-written episode first: create a product, drop its quantity
     below the minimum, watch the reorder rule raise an order. *)
  ok
    (Engine.execute_line engine
       [ Domain.new_stock ~quantity:50 ~maxquantity:100 ~minquantity:10 ]);
  let product =
    List.hd (Object_store.extent (Engine.store engine) ~class_name:"stock")
  in
  ok
    (Engine.execute_line engine
       [
         Operation.Modify
           { oid = product; attribute = "quantity"; value = Value.Int 3 };
       ]);
  let orders = Object_store.extent (Engine.store engine) ~class_name:"stockOrder" in
  Printf.printf "\nafter the quantity drop: %d stock order(s)\n" (List.length orders);
  List.iter
    (fun oid ->
      Printf.printf "  %s\n"
        (Fmt.str "%a" (Object_store.pp_object (Engine.store engine)) oid))
    orders;

  (* Mark the order delivered: the deferred fulfilOrder rule reacts to the
     create <= modify sequence at commit and removes it. *)
  (match orders with
  | [ order ] ->
      ok
        (Engine.execute_line engine
           [
             Operation.Modify
               { oid = order; attribute = "delquantity"; value = Value.Int 97 };
           ]);
      ok (Engine.commit engine);
      let remaining =
        Object_store.extent (Engine.store engine) ~class_name:"stockOrder"
      in
      Printf.printf "after delivery + commit: %d stock order(s) left\n"
        (List.length remaining)
  | _ -> failwith "expected exactly one stock order");

  (* Then a synthetic burst, to show the engine coping with churn. *)
  let prng = Prng.create ~seed:2026 in
  Scenario.run_inventory_traffic prng engine ~lines:200 ~ops_per_line:5;
  ok (Engine.commit engine);
  let stats = Engine.statistics engine in
  Printf.printf
    "\nafter 200 synthetic lines (5 ops each):\n\
    \  %d store operations, %d events recorded\n\
    \  %d trigger checks, %d ts recomputations (%d skipped via V(E))\n\
    \  %d rule considerations, %d executions\n"
    stats.Engine.operations stats.Engine.events
    stats.Engine.trigger_stats.Trigger_support.checks
    stats.Engine.trigger_stats.Trigger_support.recomputations
    stats.Engine.trigger_stats.Trigger_support.skipped
    stats.Engine.considerations stats.Engine.executions;
  Printf.printf "  live stock objects: %d, open orders: %d\n"
    (List.length (Object_store.extent (Engine.store engine) ~class_name:"stock"))
    (List.length
       (Object_store.extent (Engine.store engine) ~class_name:"stockOrder"))
