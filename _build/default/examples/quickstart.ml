(* Quickstart: the paper's checkStockQty rule (Section 2), written in the
   concrete rule language and executed end-to-end.

     dune exec examples/quickstart.exe *)

open Core

let script =
  {|
-- Schema: stock products with a quantity cap.
define class stock (quantity: integer, maxquantity: integer, minquantity: integer);

-- The rule of Section 2: on creation, clamp quantity to the maximum.
define immediate trigger checkStockQty for stock
  events { create(stock) }
  condition stock(S), occurred({ create(stock) }, S),
            S.quantity > S.maxquantity
  actions modify(S.quantity, S.maxquantity)
  consuming priority 5
end;

-- Two violating creations and a compliant one, in one transaction line:
-- the rule runs once, set-oriented, and fixes both violators.
begin
  create stock(quantity = 50, maxquantity = 10, minquantity = 0);
  create stock(quantity = 5,  maxquantity = 10, minquantity = 0);
  create stock(quantity = 99, maxquantity = 20, minquantity = 0);
end;

show stock;
commit;
|}

let () =
  let interp = Interp.create () in
  (match Interp.run_string interp script with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("quickstart failed: " ^ msg);
      exit 1);
  print_string (Interp.output interp);
  let stats = Engine.statistics (Interp.engine interp) in
  Printf.printf
    "\nrule machinery: %d trigger firings, %d considerations, %d executions\n"
    stats.Engine.trigger_stats.Trigger_support.fired stats.Engine.considerations
    stats.Engine.executions;
  print_endline "quantities are clamped to maxquantity: the paper's example works."
