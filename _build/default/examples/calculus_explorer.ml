(* Calculus explorer: parse an event expression, replay an event stream,
   and print the ts timeline — the tool behind the Fig. 5 reproduction.

     dune exec examples/calculus_explorer.exe -- "<expr>" "<stream>"

   The expression uses the paper's operators over bare event names, e.g.
   "A + (B < C)"; the stream is a whitespace-separated list of
   name[@object] occurrences, e.g. "A@1 B@2 A@1 C@1".  With no arguments a
   demo expression and stream are used. *)

open Core

let default_expr = "-(A + B) , (A < C)"
let default_stream = "C@1 A@1 B@2 C@2 A@2"

let parse_stream s =
  let items =
    List.filter (fun x -> x <> "") (String.split_on_char ' ' (String.trim s))
  in
  List.map
    (fun item ->
      match String.split_on_char '@' item with
      | [ name ] -> (name, 1)
      | [ name; obj ] -> (name, int_of_string obj)
      | _ -> failwith ("cannot parse stream item " ^ item))
    items

let () =
  let expr_src, stream_src =
    match Sys.argv with
    | [| _; e; s |] -> (e, s)
    | [| _; e |] -> (e, default_stream)
    | _ -> (default_expr, default_stream)
  in
  let expr =
    match Expr_parse.parse expr_src with
    | Ok e -> e
    | Error msg ->
        prerr_endline msg;
        exit 1
  in
  let stream = parse_stream stream_src in
  Printf.printf "expression: %s\n" (Expr.to_string expr);
  Printf.printf "primitives: %s\n\n"
    (String.concat ", "
       (List.map Event_type.to_string
          (Event_type.Set.elements (Expr.primitives expr))));

  let eb = Event_base.create () in
  let table =
    Pretty.table ~title:"ts timeline"
      ~header:[ "instant"; "event"; "object"; "ts"; "status" ]
      ~aligns:[ Pretty.Right; Pretty.Left; Pretty.Left; Pretty.Right; Pretty.Left ]
      ()
  in
  let sample label =
    let at = Event_base.probe_now eb in
    let env = Ts.env eb ~window:(Window.all ~upto:at) in
    let v = Ts.ts env ~at expr in
    Pretty.add_row table
      [
        string_of_int (Time.to_int at);
        label;
        "";
        string_of_int v;
        (if v > 0 then Printf.sprintf "ACTIVE since t%d" v else "inactive");
      ]
  in
  sample "(start)";
  List.iter
    (fun (name, obj) ->
      let etype =
        match Event_type.of_string name with
        | Ok t -> t
        | Error _ -> Event_type.external_ ~name ~class_name:"obj"
      in
      let occ = Event_base.record eb ~etype ~oid:(Ident.Oid.of_int obj) in
      let at = Event_base.probe_now eb in
      let env = Ts.env eb ~window:(Window.all ~upto:at) in
      let v = Ts.ts env ~at expr in
      Pretty.add_row table
        [
          string_of_int (Time.to_int (Occurrence.timestamp occ));
          name;
          Printf.sprintf "o%d" obj;
          string_of_int v;
          (if v > 0 then Printf.sprintf "ACTIVE since t%d" v else "inactive");
        ])
    stream;
  Pretty.print table;

  (* The V(E) analysis for the same expression. *)
  Printf.printf "\nstatic analysis (Section 5.1):\n%s\n"
    (Fmt.str "%a" Derive.pp_trace (Derive.derive expr));
  Printf.printf "V(E) = %s\n" (Simplify.to_string (Simplify.v_of_expr expr));
  let relevance = Relevance.of_expr expr in
  Printf.printf "always relevant (nullable): %b\n"
    (Relevance.always_relevant relevance)
