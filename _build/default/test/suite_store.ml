(* The object store substrate: schema with inheritance, typing, extents,
   migration, operations and the query fragment. *)

open Core

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "store error: %a" Object_store.pp_error e

let ok_schema = function
  | Ok x -> x
  | Error e -> Alcotest.failf "schema error: %a" Schema.pp_error e

let hierarchy () =
  let s = Schema.create () in
  let _ = ok_schema (Schema.define s ~name:"item" ~attributes:[ ("name", Value.T_str); ("price", Value.T_int) ] ()) in
  let _ =
    ok_schema
      (Schema.define s ~name:"perishable" ~super:"item"
         ~attributes:[ ("shelf_days", Value.T_int) ]
         ())
  in
  let _ =
    ok_schema
      (Schema.define s ~name:"frozen" ~super:"perishable"
         ~attributes:[ ("temperature", Value.T_int) ]
         ())
  in
  s

let test_schema_inheritance () =
  let s = hierarchy () in
  let attrs = ok_schema (Schema.attributes s "frozen") in
  Alcotest.(check (list string)) "inherited attributes in order"
    [ "name"; "price"; "shelf_days"; "temperature" ]
    (List.map fst attrs);
  Alcotest.(check bool) "frozen <= item" true
    (Schema.is_subclass s ~sub:"frozen" ~super:"item");
  Alcotest.(check bool) "item not <= frozen" false
    (Schema.is_subclass s ~sub:"item" ~super:"frozen");
  Alcotest.(check bool) "reflexive" true
    (Schema.is_subclass s ~sub:"item" ~super:"item")

let test_schema_errors () =
  let s = hierarchy () in
  (match Schema.define s ~name:"item" ~attributes:[] () with
  | Error (`Duplicate_class _) -> ()
  | _ -> Alcotest.fail "expected duplicate class");
  match Schema.define s ~name:"x" ~super:"nope" ~attributes:[] () with
  | Error (`Unknown_class _) -> ()
  | _ -> Alcotest.fail "expected unknown superclass"

let test_insert_typing () =
  let store = Object_store.create (hierarchy ()) in
  (match
     Object_store.insert store ~class_name:"item"
       ~attrs:[ ("name", Value.Int 3) ]
   with
  | Error (`Type_error _) -> ()
  | _ -> Alcotest.fail "expected type error");
  (match
     Object_store.insert store ~class_name:"item"
       ~attrs:[ ("nope", Value.Int 3) ]
   with
  | Error (`Unknown_attribute _) -> ()
  | _ -> Alcotest.fail "expected unknown attribute");
  let oid =
    ok
      (Object_store.insert store ~class_name:"item"
         ~attrs:[ ("name", Value.Str "soap") ])
  in
  (* Unset attributes default to null. *)
  Alcotest.(check bool) "price is null" true
    (Value.equal Value.Null (ok (Object_store.get store oid ~attribute:"price")))

let test_extent_includes_subclasses () =
  let store = Object_store.create (hierarchy ()) in
  let _ = ok (Object_store.insert store ~class_name:"item" ~attrs:[]) in
  let _ = ok (Object_store.insert store ~class_name:"perishable" ~attrs:[]) in
  let _ = ok (Object_store.insert store ~class_name:"frozen" ~attrs:[]) in
  Alcotest.(check int) "item extent covers hierarchy" 3
    (List.length (Object_store.extent store ~class_name:"item"));
  Alcotest.(check int) "perishable extent" 2
    (List.length (Object_store.extent store ~class_name:"perishable"));
  Alcotest.(check int) "frozen extent" 1
    (List.length (Object_store.extent store ~class_name:"frozen"))

let test_delete () =
  let store = Object_store.create (hierarchy ()) in
  let oid = ok (Object_store.insert store ~class_name:"item" ~attrs:[]) in
  ok (Object_store.delete store oid);
  Alcotest.(check int) "extent empty" 0
    (List.length (Object_store.extent store ~class_name:"item"));
  (match Object_store.get store oid ~attribute:"name" with
  | Error (`Deleted_object _) -> ()
  | _ -> Alcotest.fail "expected deleted object error")

let test_migration () =
  let store = Object_store.create (hierarchy ()) in
  let oid =
    ok
      (Object_store.insert store ~class_name:"frozen"
         ~attrs:[ ("name", Value.Str "peas"); ("temperature", Value.Int (-18)) ])
  in
  (* Generalize to item: loses shelf_days/temperature, keeps name. *)
  ok (Object_store.generalize store oid ~to_class:"item");
  Alcotest.(check string) "class changed" "item" (ok (Object_store.class_of store oid));
  (match Object_store.get store oid ~attribute:"temperature" with
  | Error (`Unknown_attribute _) -> ()
  | _ -> Alcotest.fail "temperature should be gone");
  Alcotest.(check bool) "name survives" true
    (Value.equal (Value.Str "peas") (ok (Object_store.get store oid ~attribute:"name")));
  (* Specialize back down: new attributes are null. *)
  ok (Object_store.specialize store oid ~to_class:"perishable");
  Alcotest.(check bool) "shelf_days null" true
    (Value.equal Value.Null (ok (Object_store.get store oid ~attribute:"shelf_days")));
  (* Sideways migration is rejected. *)
  match Object_store.generalize store oid ~to_class:"frozen" with
  | Error (`Type_error _) -> ()
  | _ -> Alcotest.fail "expected migration direction error"

let test_operations_emit_events () =
  let store = Object_store.create (hierarchy ()) in
  let emitted =
    ok (Operation.apply store (Operation.Create { class_name = "item"; attrs = [] }))
  in
  (match emitted with
  | [ { Operation.etype; _ } ] ->
      Alcotest.(check string) "create event" "create(item)"
        (Event_type.to_string etype)
  | _ -> Alcotest.fail "expected one event");
  let oid = (List.hd emitted).Operation.affected in
  let emitted =
    ok
      (Operation.apply store
         (Operation.Modify { oid; attribute = "price"; value = Value.Int 5 }))
  in
  (match emitted with
  | [ { Operation.etype; _ } ] ->
      Alcotest.(check string) "attribute-qualified modify" "modify(item.price)"
        (Event_type.to_string etype)
  | _ -> Alcotest.fail "expected one event");
  (* Select reports every object of the extent as affected. *)
  let _ = ok (Operation.apply store (Operation.Create { class_name = "item"; attrs = [] })) in
  let emitted = ok (Operation.apply store (Operation.Select { class_name = "item" })) in
  Alcotest.(check int) "select affects the extent" 2 (List.length emitted)

let test_query_eval () =
  let store = Object_store.create (hierarchy ()) in
  let oid =
    ok
      (Object_store.insert store ~class_name:"item"
         ~attrs:[ ("name", Value.Str "soap"); ("price", Value.Int 4) ])
  in
  let resolve = function "X" -> Some (Value.Oid oid) | _ -> None in
  let eval e =
    match Query.eval_expr store ~resolve e with
    | Ok v -> v
    | Error e -> Alcotest.failf "query error: %a" Query.pp_error e
  in
  Alcotest.(check bool) "arithmetic" true
    (Value.equal (Value.Int 9)
       (eval
          (Query.Add
             ( Query.Term (Query.Attr ("X", "price")),
               Query.Term (Query.Const (Value.Int 5)) ))));
  Alcotest.(check bool) "min" true
    (Value.equal (Value.Int 4)
       (eval
          (Query.Min
             ( Query.Term (Query.Attr ("X", "price")),
               Query.Term (Query.Const (Value.Int 7)) ))));
  let pred ok_expected cmp rhs =
    match
      Query.eval_predicate store ~resolve
        (Query.Cmp (cmp, Query.Attr ("X", "price"), Query.Const rhs))
    with
    | Ok b -> Alcotest.(check bool) "predicate" ok_expected b
    | Error e -> Alcotest.failf "predicate error: %a" Query.pp_error e
  in
  pred true Query.Lt (Value.Int 5);
  pred false Query.Gt (Value.Int 5);
  pred true Query.Eq (Value.Int 4);
  (* Int/float promotion. *)
  pred true Query.Lt (Value.Float 4.5);
  (* Division by zero surfaces as a typed error. *)
  match
    Query.eval_expr store ~resolve
      (Query.Div
         (Query.Term (Query.Const (Value.Int 1)), Query.Term (Query.Const (Value.Int 0))))
  with
  | Error (`Type_error _) -> ()
  | _ -> Alcotest.fail "expected division error"

let suite =
  [
    Alcotest.test_case "schema inheritance" `Quick test_schema_inheritance;
    Alcotest.test_case "schema errors" `Quick test_schema_errors;
    Alcotest.test_case "insert typing" `Quick test_insert_typing;
    Alcotest.test_case "extent includes subclasses" `Quick
      test_extent_includes_subclasses;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "generalize/specialize" `Quick test_migration;
    Alcotest.test_case "operations emit events" `Quick
      test_operations_emit_events;
    Alcotest.test_case "query evaluation" `Quick test_query_eval;
  ]
