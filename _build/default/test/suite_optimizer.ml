(* The static optimizer (Section 5.1): derivation rules (Fig. 6),
   simplification rules (Fig. 7), the worked V(E) example, and — the part
   that matters — soundness of the relevance filter, by property. *)

open Core

let etype name = Event_type.external_ ~name ~class_name:"obj"
let ea = etype "evA"
let eb_t = etype "evB"
let ec = etype "evC"

let pol_testable =
  Alcotest.testable
    (fun ppf p -> Fmt.string ppf (Variation.polarity_symbol p))
    ( = )

let v_of expr = Simplify.v_of_expr expr

let check_v expr expected =
  let v = v_of expr in
  Alcotest.(check int) "cardinality" (List.length expected) (Simplify.cardinal v);
  List.iter
    (fun (et, pol) ->
      Alcotest.(check (option pol_testable))
        (Event_type.to_string et) (Some pol)
        (Simplify.polarity_of v et))
    expected

(* Unit checks of the Fig. 6 rules. *)
let test_derive_primitive () =
  check_v (Expr.prim ea) [ (ea, Variation.Positive) ]

let test_derive_negation_flips () =
  check_v (Expr.not_ (Expr.prim ea)) [ (ea, Variation.Negative) ]

let test_derive_double_negation () =
  check_v
    (Expr.not_ (Expr.not_ (Expr.prim ea)))
    [ (ea, Variation.Positive) ]

let test_derive_binary_propagates_both () =
  check_v
    (Expr.conj (Expr.prim ea) (Expr.prim eb_t))
    [ (ea, Variation.Positive); (eb_t, Variation.Positive) ]

let test_derive_seq_second_operand_only () =
  (* D+(A < B) <= D+(B): a fresh A cannot newly satisfy the precedence. *)
  check_v
    (Expr.seq (Expr.prim ea) (Expr.prim eb_t))
    [ (eb_t, Variation.Positive) ]

let test_derive_seq_negated_second_operand () =
  (* A negation in the second operand un-freezes the first operand's
     evaluation instant: both sides are derived. *)
  check_v
    (Expr.seq (Expr.prim ea) (Expr.not_ (Expr.prim eb_t)))
    [ (ea, Variation.Positive); (eb_t, Variation.Negative) ]

let test_derive_instance_negation_lift () =
  (* min-lifted instance negation: positive variation of the whole comes
     from negative variations of the body. *)
  check_v
    (Expr.Inst (Expr.I_not (Expr.I_prim ea)))
    [ (ea, Variation.Negative) ]

(* The worked example of Section 5.1.  The OCR of the paper degrades the
   exact expression; this reconstruction exercises every rule class
   (negation, both binaries, the lifting boundary, instance negation) and
   lands on the published result V(E) = {D(A), D(B), D+(C)}. *)
let worked_example =
  Expr.disj_list
    [
      Expr.conj (Expr.prim ea) (Expr.prim eb_t);
      Expr.conj (Expr.prim ec) (Expr.not_ (Expr.prim ea));
      Expr.Inst
        (Expr.i_conj (Expr.I_prim ea)
           (Expr.i_conj (Expr.I_not (Expr.I_prim eb_t)) (Expr.I_prim ec)));
    ]

let test_worked_example () =
  check_v worked_example
    [
      (ea, Variation.Both); (eb_t, Variation.Both); (ec, Variation.Positive);
    ]

let test_trace_has_steps () =
  let trace = Derive.derive worked_example in
  Alcotest.(check bool) "several derivation steps" true
    (List.length trace.Derive.steps >= 3);
  Alcotest.(check bool) "final step all primitive" true
    (List.for_all
       (function
         | Derive.On_set (_, Expr.Prim _) | Derive.On_inst (_, Expr.I_prim _) ->
             true
         | _ -> false)
       (List.nth trace.Derive.steps (List.length trace.Derive.steps - 1)))

(* Fig. 7 simplification: scopes merge, opposite polarities merge to D. *)
let test_simplify_merges () =
  let mk polarity scope = Variation.make ~etype:ea ~polarity ~scope in
  let v =
    Simplify.of_variations
      [
        mk Variation.Positive Variation.Set_scope;
        mk Variation.Positive Variation.Object_scope;
      ]
  in
  Alcotest.(check (option pol_testable)) "same polarity merges"
    (Some Variation.Positive) (Simplify.polarity_of v ea);
  let v2 =
    Simplify.of_variations
      [
        mk Variation.Positive Variation.Set_scope;
        mk Variation.Negative Variation.Object_scope;
      ]
  in
  Alcotest.(check (option pol_testable)) "opposite polarities merge to both"
    (Some Variation.Both) (Simplify.polarity_of v2 ea)

(* Nullability: expressions that can be active with zero own-occurrences. *)
let test_always_relevant () =
  let check expr expected =
    Alcotest.(check bool) (Expr.to_string expr) expected
      (Relevance.active_without_occurrences expr)
  in
  check (Expr.prim ea) false;
  check (Expr.not_ (Expr.prim ea)) true;
  check (Expr.conj (Expr.not_ (Expr.prim ea)) (Expr.prim eb_t)) false;
  check (Expr.disj (Expr.not_ (Expr.prim ea)) (Expr.prim eb_t)) true;
  check (Expr.seq (Expr.not_ (Expr.prim ea)) (Expr.not_ (Expr.prim eb_t))) true

(* Soundness (endpoint mode), by property: if the filter calls an arriving
   event irrelevant, appending it must not *activate* the expression.
   (It may deactivate it — e.g. A < -B losing its negation — but a
   non-triggered rule's previous sign is always negative: a positive sign
   at a check sets the sticky triggered flag, after which no checks run
   until consideration.  So only missed negative-to-positive flips would
   be unsound.)  Runs on the full operator profile. *)
let filter_soundness_endpoint =
  Gen.qcheck ~count:500 "irrelevant arrivals never activate the endpoint sign"
    (QCheck.make
       ~print:(fun ((h, e), (t, o)) ->
         Printf.sprintf "history=[%s] expr=%s new=%s@o%d" (Gen.print_history h)
           (Expr.to_string e)
           (Event_type.to_string Gen.alphabet.(t))
           o)
       QCheck.Gen.(
         pair
           (pair Gen.gen_history (Gen.gen_set_expr Gen.Full))
           (pair (int_range 0 2) (int_range 0 2))))
    (fun ((h, e), (t, o)) ->
      let relevance = Relevance.of_expr e in
      let occurrence = Gen.alphabet.(t) in
      QCheck.assume (not (Relevance.relevant_endpoint relevance ~occurrence));
      let eb1 = Gen.build_event_base h in
      let before =
        Ts.active (Gen.ts_env eb1) ~at:(Event_base.probe_now eb1) e
      in
      let eb2 = Gen.build_event_base (h @ [ (t, o) ]) in
      let after = Ts.active (Gen.ts_env eb2) ~at:(Event_base.probe_now eb2) e in
      before || not after)

(* Soundness (exact mode): an exact-irrelevant arrival cannot change
   whether some instant in the window activates the expression. *)
let filter_soundness_exact =
  Gen.qcheck ~count:500 "irrelevant arrivals never create activations"
    (QCheck.make
       ~print:(fun ((h, e), (t, o)) ->
         Printf.sprintf "history=[%s] expr=%s new=%s@o%d" (Gen.print_history h)
           (Expr.to_string e)
           (Event_type.to_string Gen.alphabet.(t))
           o)
       QCheck.Gen.(
         pair
           (pair Gen.gen_history (Gen.gen_set_expr Gen.Full))
           (pair (int_range 0 2) (int_range 0 2))))
    (fun ((h, e), (t, o)) ->
      let relevance = Relevance.of_expr e in
      let occurrence = Gen.alphabet.(t) in
      QCheck.assume (not (Relevance.relevant_exact relevance ~occurrence));
      let exists history =
        let eb = Gen.build_event_base history in
        let upto = Event_base.probe_now eb in
        let env =
          Ts.env eb ~window:(Window.make ~after:(Time.of_int 1) ~upto)
        in
        Ts.exists_active env ~upto e <> None
      in
      exists h = exists (h @ [ (t, o) ]))

let suite =
  [
    Alcotest.test_case "D+ of a primitive" `Quick test_derive_primitive;
    Alcotest.test_case "negation flips polarity" `Quick
      test_derive_negation_flips;
    Alcotest.test_case "double negation restores polarity" `Quick
      test_derive_double_negation;
    Alcotest.test_case "binary operators propagate both sides" `Quick
      test_derive_binary_propagates_both;
    Alcotest.test_case "precedence propagates second operand" `Quick
      test_derive_seq_second_operand_only;
    Alcotest.test_case "negated second operand widens precedence" `Quick
      test_derive_seq_negated_second_operand;
    Alcotest.test_case "instance negation lifts negatively" `Quick
      test_derive_instance_negation_lift;
    Alcotest.test_case "worked example: V(E) = {DA, DB, D+C}" `Quick
      test_worked_example;
    Alcotest.test_case "derivation trace records steps" `Quick
      test_trace_has_steps;
    Alcotest.test_case "Fig. 7 merges" `Quick test_simplify_merges;
    Alcotest.test_case "nullability analysis" `Quick test_always_relevant;
    filter_soundness_endpoint;
    filter_soundness_exact;
  ]

(* Golden catalogue: V(E) for a battery of expression shapes, one per
   Fig. 6 rule path and their compositions.  [P] = positive, [N] =
   negative, [B] = both. *)
let test_v_catalogue () =
  let v_string expr_src =
    let v = Simplify.v_of_expr (Expr_parse.parse_exn expr_src) in
    String.concat " "
      (List.map
         (fun (etype, pol) ->
           Printf.sprintf "%s%s"
             (match pol with
             | Variation.Positive -> "P"
             | Variation.Negative -> "N"
             | Variation.Both -> "B")
             (Event_type.to_string etype))
         (Simplify.bindings v))
  in
  let check expr expected =
    Alcotest.(check string) expr expected (v_string expr)
  in
  (* Primitives and boolean structure. *)
  check "A" "PA";
  check "A , B" "PA PB";
  check "A + B" "PA PB";
  check "-A" "NA";
  check "--A" "PA";
  check "-(A + B)" "NA NB";
  check "-(A , B)" "NA NB";
  check "A + -A" "BA";
  check "A , -B" "PA NB";
  (* Precedence: second operand only... *)
  check "A < B" "PB";
  check "A < B < C" "PC";
  check "(A , B) < C" "PC";
  check "-(A < B)" "NB";
  (* ...unless the second operand contains a negation (un-freezing). *)
  check "A < -B" "PA NB";
  check "A < (B + -C)" "PA PB NC";
  (* Instance operators and the lifting boundary. *)
  check "A += B" "PA PB";
  check "A ,= B" "PA PB";
  check "A <= B" "PB";
  check "-=A" "NA";
  check "-=(A += B)" "NA NB";
  check "A + -=(B <= C)" "PA NC";
  (* Mixed granularities collapse to per-type polarities. *)
  check "(A += B) , -A" "BA PB";
  check "(A <= B) + (B < A)" "PA PB"

let suite =
  suite @ [ Alcotest.test_case "V(E) golden catalogue" `Quick test_v_catalogue ]
