(* The worked timelines of Sections 3.1 and 3.2: each walkthrough in the
   paper is transcribed as a test on activation status and activation
   timestamp at every regime the text discusses. *)

open Core

let a = Domain.create_stock
let m = Domain.modify_stock_quantity
let mmin = Domain.modify_stock_minquantity
let o1 = Ident.Oid.of_int 1
let o2 = Ident.Oid.of_int 2
let o3 = Ident.Oid.of_int 3

(* Replays occurrences and returns (eb, instants of each occurrence). *)
let replay occs =
  let eb = Event_base.create () in
  (* Explicit fold: the recording order is load-bearing and List.map's
     application order is unspecified. *)
  let stamps =
    List.rev
      (List.fold_left
         (fun acc (etype, oid) ->
           Occurrence.timestamp (Event_base.record eb ~etype ~oid) :: acc)
         [] occs)
  in
  (eb, stamps)

let env_all eb = Ts.env eb ~window:(Window.all ~upto:(Event_base.probe_now eb))

let check_ts env expr ~at expected_msg expected =
  Alcotest.(check int) expected_msg expected (Ts.ts env ~at expr)

(* Section 3.1, disjunction: create at t1, t2; modify at t3. *)
let test_set_disjunction () =
  let eb, stamps = replay [ (a, o1); (a, o2); (m, o1) ] in
  let t1, t2, t3 =
    match stamps with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  let env = env_all eb in
  let e = Expr_parse.parse_exn "create(stock) , modify(stock.quantity)" in
  let before = Time.probe_before t1 in
  check_ts env e ~at:before "inactive before t1" (-Time.to_int before);
  check_ts env e ~at:t1 "stamp t1 in [t1,t2)" (Time.to_int t1);
  check_ts env e ~at:(Time.probe_before t2) "still t1 just before t2" (Time.to_int t1);
  check_ts env e ~at:t2 "stamp t2 in [t2,t3)" (Time.to_int t2);
  check_ts env e ~at:t3 "stamp t3 after t3" (Time.to_int t3);
  check_ts env e ~at:(Time.probe_after t3) "stays t3" (Time.to_int t3)

(* Section 3.1, conjunction: active only from t3, stamped t3. *)
let test_set_conjunction () =
  let eb, stamps = replay [ (a, o1); (a, o2); (m, o1) ] in
  let t1, t2, t3 =
    match stamps with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  let env = env_all eb in
  let e = Expr_parse.parse_exn "create(stock) + modify(stock.quantity)" in
  let before = Time.probe_before t1 in
  check_ts env e ~at:before "inactive before t1" (-Time.to_int before);
  let mid = Time.probe_before t2 in
  check_ts env e ~at:mid "still inactive in [t1,t2)" (-Time.to_int mid);
  let mid2 = Time.probe_before t3 in
  check_ts env e ~at:mid2 "still inactive in [t2,t3)" (-Time.to_int mid2);
  check_ts env e ~at:t3 "active from t3 with stamp t3" (Time.to_int t3);
  (* After t3 the conjunction keeps the max of activation stamps. *)
  check_ts env e ~at:(Time.probe_after t3) "stays t3" (Time.to_int t3)

(* Section 3.1, negation: -create(stock) with a single create at t1. *)
let test_set_negation () =
  let eb, stamps = replay [ (a, o1) ] in
  let t1 = List.hd stamps in
  let env = env_all eb in
  let e = Expr_parse.parse_exn "-create(stock)" in
  let before = Time.probe_before t1 in
  check_ts env e ~at:before "active before t1, stamped now" (Time.to_int before);
  check_ts env e ~at:t1 "inactive from t1" (-Time.to_int t1);
  check_ts env e ~at:(Time.probe_after t1) "stays inactive"
    (-Time.to_int t1)

(* Section 3.1, precedence: creates at t1 t2, modify at t3. *)
let test_set_precedence () =
  let eb, stamps = replay [ (a, o1); (a, o2); (m, o1) ] in
  let t1, t2, t3 =
    match stamps with [ x; y; z ] -> (x, y, z) | _ -> assert false
  in
  ignore t1;
  let env = env_all eb in
  let e = Expr_parse.parse_exn "create(stock) < modify(stock.quantity)" in
  let mid = Time.probe_before t3 in
  check_ts env e ~at:mid "inactive before t3" (-Time.to_int mid);
  check_ts env e ~at:t3 "active at t3 with stamp t3" (Time.to_int t3);
  check_ts env e ~at:(Time.probe_after t3) "stamp remains t3" (Time.to_int t3);
  ignore t2

(* Precedence requires the first operand strictly before the second's
   activation: modify-then-create is not create-before-modify. *)
let test_set_precedence_order_matters () =
  let eb, _ = replay [ (m, o1); (a, o1) ] in
  let env = env_all eb in
  let e = Expr_parse.parse_exn "create(stock) < modify(stock.quantity)" in
  let at = Event_base.probe_now eb in
  Alcotest.(check bool) "not active" false (Ts.active env ~at e)

(* Section 3.2, instance-oriented primitives: creates on o1 at t1 and o2 at
   t2 are tracked per object. *)
let test_instance_primitive () =
  let eb, stamps = replay [ (a, o1); (a, o2) ] in
  let t1, t2 = match stamps with [ x; y ] -> (x, y) | _ -> assert false in
  let env = env_all eb in
  let p = Expr.I_prim a in
  let mid = Time.probe_before t2 in
  Alcotest.(check int) "o1 active at t1" (Time.to_int t1) (Ts.ots env ~at:mid p o1);
  Alcotest.(check int) "o2 inactive before t2" (-Time.to_int mid)
    (Ts.ots env ~at:mid p o2);
  let late = Time.probe_after t2 in
  Alcotest.(check int) "o1 keeps t1" (Time.to_int t1) (Ts.ots env ~at:late p o1);
  Alcotest.(check int) "o2 active from t2" (Time.to_int t2)
    (Ts.ots env ~at:late p o2)

(* Section 3.2, instance conjunction: create and modify must hit the same
   object. *)
let test_instance_conjunction () =
  let eb, _ = replay [ (a, o1); (m, o2) ] in
  let env = env_all eb in
  let e = Expr_parse.parse_exn "create(stock) += modify(stock.quantity)" in
  let at = Event_base.probe_now eb in
  Alcotest.(check bool) "different objects: inactive" false (Ts.active env ~at e);
  let eb2, stamps = replay [ (a, o1); (m, o2); (m, o1) ] in
  let env2 = env_all eb2 in
  let t3 = List.nth stamps 2 in
  Alcotest.(check int) "same object o1: active with stamp t3" (Time.to_int t3)
    (Ts.ts env2 ~at:(Event_base.probe_now eb2) e)

(* Section 3.2, instance disjunction walkthrough: creates on o1, o2;
   modifies on o1, o3. *)
let test_instance_disjunction () =
  let eb, stamps = replay [ (a, o1); (a, o2); (m, o1); (m, o3) ] in
  let t1, t2, t3, t4 =
    match stamps with [ w; x; y; z ] -> (w, x, y, z) | _ -> assert false
  in
  let env = env_all eb in
  let e = Expr_parse.parse_exn "create(stock) ,= modify(stock.quantity)" in
  let ie =
    Expr_parse.parse_inst_exn "create(stock) ,= modify(stock.quantity)"
  in
  let late = Event_base.probe_now eb in
  Alcotest.(check int) "o1: most recent of create/modify" (Time.to_int t3)
    (Ts.ots env ~at:late ie o1);
  Alcotest.(check int) "o2: its create" (Time.to_int t2) (Ts.ots env ~at:late ie o2);
  Alcotest.(check int) "o3: its modify" (Time.to_int t4) (Ts.ots env ~at:late ie o3);
  (* Set-lifted: the most recent activation across objects. *)
  Alcotest.(check int) "lifted stamp" (Time.to_int t4) (Ts.ts env ~at:late e);
  ignore t1

(* Section 3.2, instance negation: -=create(stock) is active for an object
   with no creation, and set-wise iff no object has one. *)
let test_instance_negation () =
  let eb, stamps = replay [ (a, o1); (m, o2) ] in
  let t1 = List.hd stamps in
  let env = env_all eb in
  let ie = Expr_parse.parse_inst_exn "-=create(stock)" in
  let late = Event_base.probe_now eb in
  Alcotest.(check bool) "inactive for created o1" false
    (Ts.active_on env ~at:late ie o1);
  Alcotest.(check bool) "active for untouched-by-create o2" true
    (Ts.active_on env ~at:late ie o2);
  (* Set level: some object (o1) has the creation, so the lifted negation
     is inactive. *)
  let e = Expr.Inst ie in
  Alcotest.(check bool) "lifted: inactive" false (Ts.active env ~at:late e);
  (* Before t1 nothing was created: lifted negation active. *)
  let before = Time.probe_before t1 in
  Alcotest.(check bool) "lifted active before any create" true
    (Ts.active env ~at:before e)

(* Section 3.2, instance precedence: both events on the same object, in
   order. *)
let test_instance_precedence () =
  let eb, stamps = replay [ (mmin, o1); (mmin, o1); (m, o1) ] in
  let t3 = List.nth stamps 2 in
  let env = env_all eb in
  let ie =
    Expr_parse.parse_inst_exn
      "modify(stock.minquantity) <= modify(stock.quantity)"
  in
  let late = Event_base.probe_now eb in
  Alcotest.(check int) "active for o1 with stamp t3" (Time.to_int t3)
    (Ts.ots env ~at:late ie o1);
  (* Cross-object sequence does not satisfy the instance precedence. *)
  let eb2, _ = replay [ (mmin, o1); (m, o2) ] in
  let env2 = env_all eb2 in
  Alcotest.(check bool) "cross-object: inactive set-wise" false
    (Ts.active env2 ~at:(Event_base.probe_now eb2) (Expr.Inst ie));
  (* But the set-oriented precedence is satisfied by different objects. *)
  let se =
    Expr_parse.parse_exn "modify(stock.minquantity) < modify(stock.quantity)"
  in
  Alcotest.(check bool) "set-oriented: active" true
    (Ts.active env2 ~at:(Event_base.probe_now eb2) se)

(* The paper's complex sample expression (Section 3.1) parses and evaluates. *)
let test_paper_sample_expression () =
  let e = Scenario.sample_composite_event in
  let eb, _ = replay [ (Domain.modify_show_quantity, o1) ] in
  let env = env_all eb in
  (* A shown-product change with no stock-order creation: the negated
     branch holds, so the conjunction is active. *)
  Alcotest.(check bool) "active on modify(show.quantity) alone" true
    (Ts.active env ~at:(Event_base.probe_now eb) e)

(* Windows: a consuming window hides occurrences before the last
   consideration. *)
let test_window_consumption () =
  let eb, stamps = replay [ (a, o1); (m, o1) ] in
  let t1 = List.hd stamps in
  let e = Expr_parse.parse_exn "create(stock)" in
  let late = Event_base.probe_now eb in
  let consuming =
    Ts.env eb ~window:(Window.make ~after:(Time.probe_after t1) ~upto:late)
  in
  Alcotest.(check bool) "create consumed" false (Ts.active consuming ~at:late e);
  let preserving = Ts.env eb ~window:(Window.all ~upto:late) in
  Alcotest.(check bool) "preserved" true (Ts.active preserving ~at:late e)

let suite =
  [
    Alcotest.test_case "set disjunction timeline (3.1)" `Quick
      test_set_disjunction;
    Alcotest.test_case "set conjunction timeline (3.1)" `Quick
      test_set_conjunction;
    Alcotest.test_case "set negation timeline (3.1)" `Quick test_set_negation;
    Alcotest.test_case "set precedence timeline (3.1)" `Quick
      test_set_precedence;
    Alcotest.test_case "precedence needs order" `Quick
      test_set_precedence_order_matters;
    Alcotest.test_case "instance primitives (3.2)" `Quick
      test_instance_primitive;
    Alcotest.test_case "instance conjunction (3.2)" `Quick
      test_instance_conjunction;
    Alcotest.test_case "instance disjunction (3.2)" `Quick
      test_instance_disjunction;
    Alcotest.test_case "instance negation (3.2)" `Quick test_instance_negation;
    Alcotest.test_case "instance precedence (3.2)" `Quick
      test_instance_precedence;
    Alcotest.test_case "paper sample expression" `Quick
      test_paper_sample_expression;
    Alcotest.test_case "window consumption" `Quick test_window_consumption;
  ]
