(* Event formulas (Section 3.3): occurred over composite instance
   expressions, and the new occurrence-timestamp predicate at. *)

open Core

let a = Domain.create_stock
let m = Domain.modify_stock_quantity
let o1 = Ident.Oid.of_int 1
let o2 = Ident.Oid.of_int 2

let replay occs =
  let eb = Event_base.create () in
  (* Explicit fold: the recording order is load-bearing and List.map's
     application order is unspecified. *)
  let stamps =
    List.rev
      (List.fold_left
         (fun acc (etype, oid) ->
           Occurrence.timestamp (Event_base.record eb ~etype ~oid) :: acc)
         [] occs)
  in
  (eb, stamps)

let env_all eb = Ts.env eb ~window:(Window.all ~upto:(Event_base.probe_now eb))

(* occurred(create(stock) <= modify(stock.quantity), X) binds the created
   objects whose quantity was later modified. *)
let test_occurred_composite () =
  let eb, _ = replay [ (a, o1); (a, o2); (m, o1) ] in
  let env = env_all eb in
  let ie =
    Expr_parse.parse_inst_exn "create(stock) <= modify(stock.quantity)"
  in
  let at = Event_base.probe_now eb in
  let bound = Ts.occurred_objects env ~at ie in
  Alcotest.(check (list int))
    "only o1 bound" [ 1 ]
    (List.map Ident.Oid.to_int bound)

(* The paper's at example: a creation followed by two quantity updates
   makes the composite occur twice, exactly at the two update instants. *)
let test_at_binds_both_updates () =
  let eb, stamps = replay [ (a, o1); (m, o1); (m, o1) ] in
  let t2 = List.nth stamps 1 and t3 = List.nth stamps 2 in
  let env = env_all eb in
  let ie =
    Expr_parse.parse_inst_exn "create(stock) <= modify(stock.quantity)"
  in
  let at = Event_base.probe_now eb in
  let instants = Ts.occurrence_instants env ~at ie o1 in
  Alcotest.(check (list int))
    "both update instants" [ Time.to_int t2; Time.to_int t3 ]
    (List.map Time.to_int instants)

(* The creation instant itself is not an occurrence of the precedence. *)
let test_at_excludes_creation () =
  let eb, stamps = replay [ (a, o1); (m, o1) ] in
  let t1 = List.hd stamps in
  let env = env_all eb in
  let ie =
    Expr_parse.parse_inst_exn "create(stock) <= modify(stock.quantity)"
  in
  let at = Event_base.probe_now eb in
  let instants = Ts.occurrence_instants env ~at ie o1 in
  Alcotest.(check bool)
    "creation instant not included" false
    (List.exists (Time.equal t1) instants)

(* Consumption: with a window starting after the creation, the precedence
   cannot bind (its first component was consumed). *)
let test_occurred_respects_window () =
  let eb, stamps = replay [ (a, o1); (m, o1) ] in
  let t1 = List.hd stamps in
  let ie =
    Expr_parse.parse_inst_exn "create(stock) <= modify(stock.quantity)"
  in
  let at = Event_base.probe_now eb in
  let consuming =
    Ts.env eb ~window:(Window.make ~after:(Time.probe_after t1) ~upto:at)
  in
  Alcotest.(check (list int))
    "nothing bound" []
    (List.map Ident.Oid.to_int (Ts.occurred_objects consuming ~at ie))

(* The holds-replacement note of Section 3.3: net-effect creation — an
   object created and not deleted — expressed directly in the calculus. *)
let test_net_effect_creation () =
  let d = Domain.delete_stock in
  let eb, _ = replay [ (a, o1); (m, o1); (a, o2); (d, o2) ] in
  let env = env_all eb in
  let net_created = Expr_parse.parse_inst_exn "create(stock) += -=delete(stock)" in
  let at = Event_base.probe_now eb in
  let bound = Ts.occurred_objects env ~at net_created in
  Alcotest.(check (list int))
    "o1 survives, o2 was deleted" [ 1 ]
    (List.map Ident.Oid.to_int bound)

(* at on a disjunction reports every refreshing occurrence. *)
let test_at_disjunction () =
  let eb, stamps = replay [ (a, o1); (m, o1) ] in
  let env = env_all eb in
  let ie =
    Expr_parse.parse_inst_exn "create(stock) ,= modify(stock.quantity)"
  in
  let at = Event_base.probe_now eb in
  let instants = Ts.occurrence_instants env ~at ie o1 in
  Alcotest.(check (list int))
    "both instants occur" (List.map Time.to_int stamps)
    (List.map Time.to_int instants)

let suite =
  [
    Alcotest.test_case "occurred over composite" `Quick test_occurred_composite;
    Alcotest.test_case "at binds both updates (paper example)" `Quick
      test_at_binds_both_updates;
    Alcotest.test_case "at excludes the creation instant" `Quick
      test_at_excludes_creation;
    Alcotest.test_case "occurred respects consumption window" `Quick
      test_occurred_respects_window;
    Alcotest.test_case "net-effect creation replaces holds" `Quick
      test_net_effect_creation;
    Alcotest.test_case "at on disjunction" `Quick test_at_disjunction;
  ]
