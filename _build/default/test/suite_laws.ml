(* Property tests for the formal semantics (Section 4): agreement of the
   logical and algebraic styles, De Morgan and the other boolean laws the
   paper lists, lifting inequalities, and structural sanity of ts values.

   All laws are checked as *value* equalities of ts at every sign regime of
   a random history, which is the paper's headline claim ("achieving this
   result has required a non-obvious twisting of the ts functions"). *)

open Core

let on_all_probes h f =
  let eb = Gen.build_event_base h in
  let env = Gen.ts_env eb in
  List.for_all (fun at -> f env at) (Gen.probe_instants eb)

let value_law ?count name profile ~lhs ~rhs =
  Gen.qcheck ?count name
    (Gen.arb_history_and_exprs2 profile)
    (fun (h, (a, b)) ->
      on_all_probes h (fun env at ->
          Ts.ts env ~at (lhs a b) = Ts.ts env ~at (rhs a b)))

let value_law3 ?count name profile ~lhs ~rhs =
  Gen.qcheck ?count name
    (Gen.arb_history_and_exprs3 profile)
    (fun (h, (a, (b, c))) ->
      on_all_probes h (fun env at ->
          Ts.ts env ~at (lhs a b c) = Ts.ts env ~at (rhs a b c)))

let logical_equals_algebraic =
  Gen.qcheck "logical style = algebraic style"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let logical = Gen.ts_env ~style:Ts.Logical eb in
      let algebraic = Gen.ts_env ~style:Ts.Algebraic eb in
      List.for_all
        (fun at -> Ts.ts logical ~at e = Ts.ts algebraic ~at e)
        (Gen.probe_instants eb))

let double_negation =
  Gen.qcheck "--E = E" (Gen.arb_history_and_expr Gen.Full) (fun (h, e) ->
      on_all_probes h (fun env at ->
          Ts.ts env ~at (Expr.not_ (Expr.not_ e)) = Ts.ts env ~at e))

let de_morgan_conj =
  value_law "-(A + B) = (-A , -B)" Gen.Full
    ~lhs:(fun a b -> Expr.not_ (Expr.conj a b))
    ~rhs:(fun a b -> Expr.disj (Expr.not_ a) (Expr.not_ b))

let de_morgan_disj =
  value_law "-(A , B) = (-A + -B)" Gen.Full
    ~lhs:(fun a b -> Expr.not_ (Expr.disj a b))
    ~rhs:(fun a b -> Expr.conj (Expr.not_ a) (Expr.not_ b))

let conj_commutative =
  value_law "A + B = B + A" Gen.Full ~lhs:Expr.conj ~rhs:(fun a b ->
      Expr.conj b a)

let disj_commutative =
  value_law "A , B = B , A" Gen.Full ~lhs:Expr.disj ~rhs:(fun a b ->
      Expr.disj b a)

let conj_associative =
  value_law3 "(A + B) + C = A + (B + C)" Gen.Full
    ~lhs:(fun a b c -> Expr.conj (Expr.conj a b) c)
    ~rhs:(fun a b c -> Expr.conj a (Expr.conj b c))

let disj_associative =
  value_law3 "(A , B) , C = A , (B , C)" Gen.Full
    ~lhs:(fun a b c -> Expr.disj (Expr.disj a b) c)
    ~rhs:(fun a b c -> Expr.disj a (Expr.disj b c))

(* Distributivity and precedence factoring.  On the negation-free fragment
   every inactive ts value is exactly -t, and the laws hold as value
   equalities.  Under negation, inactive magnitudes differ (they carry the
   negated component's stamp), so conj/disj distributivity weakens to the
   triggering level (sign equality) — and factoring a disjunction out of a
   precedence's *second* operand additionally requires the first operand to
   be monotone (a negation there can be active at the earlier disjunct's
   stamp but not at the later one), so that law is stated on the
   negation-free fragment only, which is where the paper's proof sketch
   lives. *)

let sign_law3 ?count name profile ~lhs ~rhs =
  Gen.qcheck ?count name
    (Gen.arb_history_and_exprs3 profile)
    (fun (h, (a, (b, c))) ->
      on_all_probes h (fun env at ->
          Ts.active env ~at (lhs a b c) = Ts.active env ~at (rhs a b c)))

let conj_distributes_over_disj_values =
  value_law3 "A + (B , C) = (A + B) , (A + C)  [negation-free, values]"
    Gen.Regular
    ~lhs:(fun a b c -> Expr.conj a (Expr.disj b c))
    ~rhs:(fun a b c -> Expr.disj (Expr.conj a b) (Expr.conj a c))

let conj_distributes_over_disj_signs =
  sign_law3 "A + (B , C) = (A + B) , (A + C)  [triggering level]" Gen.Full
    ~lhs:(fun a b c -> Expr.conj a (Expr.disj b c))
    ~rhs:(fun a b c -> Expr.disj (Expr.conj a b) (Expr.conj a c))

let disj_factoring_left_of_seq =
  value_law3 "(A , B) < C = (A < C) , (B < C)" Gen.Full
    ~lhs:(fun a b c -> Expr.seq (Expr.disj a b) c)
    ~rhs:(fun a b c -> Expr.disj (Expr.seq a c) (Expr.seq b c))

let disj_factoring_right_of_seq =
  value_law3 "A < (B , C) = (A < B) , (A < C)  [negation-free]" Gen.Regular
    ~lhs:(fun a b c -> Expr.seq a (Expr.disj b c))
    ~rhs:(fun a b c -> Expr.disj (Expr.seq a b) (Expr.seq a c))

(* Structural sanity: a positive ts value is the timestamp of the
   activation instant, hence at most the evaluation instant. *)
let activation_bounded =
  Gen.qcheck "positive ts carries an instant <= at"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      on_all_probes h (fun env at ->
          let v = Ts.ts env ~at e in
          v = 0 || abs v <= Time.to_int at))

(* Negation-free expressions are monotone: once active, appending further
   events never deactivates them (within one window). *)
let regular_monotone =
  Gen.qcheck "negation-free activation is monotone"
    (Gen.arb_history_and_expr Gen.Regular)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let env = Gen.ts_env eb in
      let actives =
        List.map (fun at -> Ts.active env ~at e) (Gen.probe_instants eb)
      in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> (a <= b) && non_decreasing rest
        | _ -> true
      in
      non_decreasing actives)

(* Lifting inequalities (Section 4.3): an instance-oriented composition is
   at least as strict as its set-oriented counterpart. *)
let lifted pairs =
  Gen.qcheck "instance operators imply their set counterparts"
    (QCheck.make
       ~print:(fun (h, (i, j), k) ->
         Printf.sprintf "history=[%s] prims=(%d,%d) op=%d" (Gen.print_history h)
           i j k)
       QCheck.Gen.(
         triple Gen.gen_history
           (pair (int_range 0 2) (int_range 0 2))
           (int_range 0 (List.length pairs - 1))))
    (fun (h, (i, j), k) ->
      let a = Gen.alphabet.(i) and b = Gen.alphabet.(j) in
      let inst_op, set_op = List.nth pairs k in
      let ie = inst_op (Expr.I_prim a) (Expr.I_prim b) in
      let se = set_op (Expr.prim a) (Expr.prim b) in
      on_all_probes h (fun env at ->
          (not (Ts.active env ~at (Expr.inst ie))) || Ts.active env ~at se))

let instance_implies_set =
  lifted
    [
      (Expr.i_conj, Expr.conj); (Expr.i_disj, Expr.disj); (Expr.i_seq, Expr.seq);
    ]

(* On primitives, the set-lifted instance negation coincides with the set
   negation exactly (the paper states this equivalence). *)
let instance_negation_of_primitive =
  Gen.qcheck "-=p lifts to -p on primitives"
    (QCheck.make
       ~print:(fun (h, i) ->
         Printf.sprintf "history=[%s] prim=%d" (Gen.print_history h) i)
       QCheck.Gen.(pair Gen.gen_history (int_range 0 2)))
    (fun (h, i) ->
      let p = Gen.alphabet.(i) in
      on_all_probes h (fun env at ->
          Ts.ts env ~at (Expr.Inst (Expr.I_not (Expr.I_prim p)))
          = Ts.ts env ~at (Expr.not_ (Expr.prim p))))

(* ots of a negation-free instance expression never exceeds the ts of its
   set-oriented counterpart. *)
let rec set_of_inst = function
  | Expr.I_prim p -> Expr.prim p
  | Expr.I_not e -> Expr.not_ (set_of_inst e)
  | Expr.I_and (a, b) -> Expr.conj (set_of_inst a) (set_of_inst b)
  | Expr.I_or (a, b) -> Expr.disj (set_of_inst a) (set_of_inst b)
  | Expr.I_seq (a, b) -> Expr.seq (set_of_inst a) (set_of_inst b)

let ots_below_ts =
  Gen.qcheck "ots <= ts on negation-free instance expressions"
    (QCheck.make
       ~print:(fun (h, e) ->
         Printf.sprintf "history=[%s] expr=%s" (Gen.print_history h)
           (Expr.inst_to_string e))
       QCheck.Gen.(pair Gen.gen_history Gen.gen_inst_expr))
    (fun (h, ie) ->
      QCheck.assume (not (Expr.inst_has_negation ie));
      let eb = Gen.build_event_base h in
      let env = Gen.ts_env eb in
      let se = set_of_inst ie in
      List.for_all
        (fun at ->
          List.for_all
            (fun oid -> Ts.ots env ~at ie oid <= Ts.ts env ~at se)
            (List.map Ident.Oid.of_int [ 1; 2; 3 ]))
        (Gen.probe_instants eb))

(* exists_active agrees with a brute-force scan over all probe regimes. *)
let exists_active_exact =
  Gen.qcheck "exists_active = brute-force regime scan"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let eb = Gen.build_event_base h in
      let upto = Event_base.probe_now eb in
      let window = Window.make ~after:(Time.of_int 1) ~upto in
      let env = Ts.env eb ~window in
      let brute =
        List.exists
          (fun at -> Ts.active env ~at e)
          (List.filter (fun at -> Time.(at >= of_int 1)) (Gen.probe_instants eb))
      in
      let fast = Ts.exists_active env ~upto e <> None in
      brute = fast)

let suite =
  [
    logical_equals_algebraic;
    double_negation;
    de_morgan_conj;
    de_morgan_disj;
    conj_commutative;
    disj_commutative;
    conj_associative;
    disj_associative;
    conj_distributes_over_disj_values;
    conj_distributes_over_disj_signs;
    disj_factoring_left_of_seq;
    disj_factoring_right_of_seq;
    activation_bounded;
    regular_monotone;
    instance_implies_set;
    instance_negation_of_primitive;
    ots_below_ts;
    exists_active_exact;
  ]

(* Causality: ts at an instant never depends on later occurrences — the
   property that makes memoization (and the incremental exact scan)
   sound. *)
let ts_is_causal =
  Gen.qcheck ~count:300 "ts is causal (future events are invisible)"
    (QCheck.make
       ~print:(fun ((h, e), extra) ->
         Printf.sprintf "history=[%s] expr=%s extra=%d" (Gen.print_history h)
           (Expr.to_string e) (List.length extra))
       QCheck.Gen.(
         pair
           (pair Gen.gen_history (Gen.gen_set_expr Gen.Full))
           Gen.gen_history))
    (fun ((h, e), extra) ->
      let eb_short = Gen.build_event_base h in
      let probes = Gen.probe_instants eb_short in
      let short =
        let env = Gen.ts_env eb_short in
        List.map (fun at -> Ts.ts env ~at e) probes
      in
      let eb_long = Gen.build_event_base (h @ extra) in
      let long =
        let env = Gen.ts_env eb_long in
        List.map (fun at -> Ts.ts env ~at e) probes
      in
      short = long)

let suite = suite @ [ ts_is_causal ]

(* Negation normal form: value-preserving at every instant, idempotent,
   and actually in NNF.  The push through the lifting boundary makes this
   a machine-check of -(Inst ie) = Inst(-= ie) as well. *)
let nnf_preserves_values =
  Gen.qcheck ~count:400 "nnf preserves ts values"
    (Gen.arb_history_and_expr Gen.Full)
    (fun (h, e) ->
      let n = Normal_form.nnf e in
      Normal_form.in_nnf n
      && Expr.equal (Normal_form.nnf n) n
      && on_all_probes h (fun env at -> Ts.ts env ~at e = Ts.ts env ~at n))

let suite = suite @ [ nnf_preserves_values ]
