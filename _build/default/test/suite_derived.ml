(* Derived related-work operators (the subsumption claim of the paper's
   conclusions) and Snoop parameter contexts. *)

open Core

let ev i = Gen.alphabet.(i)
let pa = Expr.prim (ev 0)
let pb = Expr.prim (ev 1)
let pc = Expr.prim (ev 2)

let active_on h e =
  let eb = Gen.build_event_base h in
  let at = Event_base.probe_now eb in
  Ts.active (Ts.env eb ~window:(Window.all ~upto:at)) ~at e

(* ----------------------------------------------- derived combinators *)

let test_any_all () =
  let any = Derived.any_of [ pa; pb; pc ] in
  let all = Derived.all_of [ pa; pb; pc ] in
  Alcotest.(check bool) "any on B alone" true (active_on [ (1, 0) ] any);
  Alcotest.(check bool) "all needs all three" false
    (active_on [ (1, 0); (0, 0) ] all);
  Alcotest.(check bool) "all on all three" true
    (active_on [ (1, 0); (0, 0); (2, 1) ] all)

let test_sequence () =
  let seq = Derived.sequence [ pa; pb; pc ] in
  Alcotest.(check bool) "in order" true
    (active_on [ (0, 0); (1, 0); (2, 0) ] seq);
  Alcotest.(check bool) "out of order" false
    (active_on [ (1, 0); (0, 0); (2, 0) ] seq);
  Alcotest.(check bool) "missing middle" false
    (active_on [ (0, 0); (2, 0) ] seq)

let test_without () =
  let e = Derived.without pb ~absent:pa in
  Alcotest.(check bool) "B with no A" true (active_on [ (1, 0) ] e);
  Alcotest.(check bool) "B with A" false (active_on [ (0, 0); (1, 0) ] e)

let test_not_followed_by () =
  let e = Derived.not_followed_by pa ~by:pb in
  Alcotest.(check bool) "A alone" true (active_on [ (0, 0) ] e);
  Alcotest.(check bool) "A then B" false (active_on [ (0, 0); (1, 0) ] e);
  (* The precedence anchors on the LAST B: once some A preceded it, a
     fresh A cannot undo the completed pattern. *)
  Alcotest.(check bool) "A B A" false (active_on [ (0, 0); (1, 0); (0, 0) ] e);
  (* But a B that no A preceded does not count as "followed". *)
  Alcotest.(check bool) "B A" true (active_on [ (1, 0); (0, 0) ] e)

let test_one_of_not_both () =
  let e = Derived.one_of_not_both pa pb in
  Alcotest.(check bool) "A only" true (active_on [ (0, 0) ] e);
  Alcotest.(check bool) "B only" true (active_on [ (1, 0) ] e);
  Alcotest.(check bool) "both" false (active_on [ (0, 0); (1, 0) ] e)

let test_net_created_combinator () =
  let a = Domain.create_stock and d = Domain.delete_stock in
  let e = Derived.net_created ~create:a ~delete:d in
  let eb = Event_base.create () in
  let o1 = Ident.Oid.of_int 1 and o2 = Ident.Oid.of_int 2 in
  ignore (Event_base.record eb ~etype:a ~oid:o1);
  ignore (Event_base.record eb ~etype:a ~oid:o2);
  ignore (Event_base.record eb ~etype:d ~oid:o2);
  let at = Event_base.probe_now eb in
  let env = Ts.env eb ~window:(Window.all ~upto:at) in
  Alcotest.(check bool) "o1 survives: active" true (Ts.active env ~at e)

(* ----------------------------------------------------- Snoop contexts *)

let feed_pairs detector stream =
  let clock = Time.Clock.create () in
  List.iter
    (fun i ->
      Context_detector.on_event detector ~etype:(ev i)
        ~timestamp:(Time.Clock.next_event_instant clock))
    stream;
  List.map
    (fun p ->
      ( Time.to_int p.Context_detector.initiator,
        Time.to_int p.Context_detector.terminator ))
    (Context_detector.detections detector)

(* Stream: A@2 A@4 B@6 B@8 (indices 0=A, 1=B). *)
let stream = [ 0; 0; 1; 1 ]

let test_context_recent () =
  let d = Context_detector.create Context_detector.Recent ~a:(ev 0) ~b:(ev 1) in
  Alcotest.(check (list (pair int int)))
    "recent pairs the latest A, twice"
    [ (4, 6); (4, 8) ]
    (feed_pairs d stream)

let test_context_chronicle () =
  let d =
    Context_detector.create Context_detector.Chronicle ~a:(ev 0) ~b:(ev 1)
  in
  Alcotest.(check (list (pair int int)))
    "chronicle pairs FIFO"
    [ (2, 6); (4, 8) ]
    (feed_pairs d stream)

let test_context_continuous () =
  let d =
    Context_detector.create Context_detector.Continuous ~a:(ev 0) ~b:(ev 1)
  in
  Alcotest.(check (list (pair int int)))
    "continuous pairs all open initiators, consuming them"
    [ (2, 6); (4, 6) ]
    (feed_pairs d stream)

let test_context_reset () =
  let d = Context_detector.create Context_detector.Recent ~a:(ev 0) ~b:(ev 1) in
  ignore (feed_pairs d stream);
  Context_detector.reset d;
  Alcotest.(check int) "cleared" 0 (Context_detector.detection_count d)

(* The calculus itself behaves recent-like on activation stamps: the
   precedence's stamp tracks the latest terminator. *)
let calculus_is_recent_like =
  Gen.qcheck ~count:200 "calculus precedence stamps match recent context"
    Gen.arb_history (fun h ->
      let a = Gen.alphabet.(0) and b = Gen.alphabet.(1) in
      let eb = Gen.build_event_base h in
      let detector = Context_detector.create Context_detector.Recent ~a ~b in
      List.iter
        (fun occ ->
          Context_detector.on_event detector ~etype:(Occurrence.etype occ)
            ~timestamp:(Occurrence.timestamp occ))
        (Event_base.to_list eb);
      let at = Event_base.probe_now eb in
      let env = Ts.env eb ~window:(Window.all ~upto:at) in
      let expr = Expr.seq (Expr.prim a) (Expr.prim b) in
      match
        ( Ts.activation env ~at expr,
          List.rev (Context_detector.detections detector) )
      with
      | None, [] -> true
      | Some stamp, last :: _ ->
          Time.to_int stamp = Time.to_int last.Context_detector.terminator
      | Some _, [] | None, _ :: _ -> false)

let suite =
  [
    Alcotest.test_case "any_of / all_of" `Quick test_any_all;
    Alcotest.test_case "sequence" `Quick test_sequence;
    Alcotest.test_case "without" `Quick test_without;
    Alcotest.test_case "not_followed_by" `Quick test_not_followed_by;
    Alcotest.test_case "one_of_not_both" `Quick test_one_of_not_both;
    Alcotest.test_case "net_created combinator" `Quick
      test_net_created_combinator;
    Alcotest.test_case "Snoop context: recent" `Quick test_context_recent;
    Alcotest.test_case "Snoop context: chronicle" `Quick test_context_chronicle;
    Alcotest.test_case "Snoop context: continuous" `Quick
      test_context_continuous;
    Alcotest.test_case "Snoop context reset" `Quick test_context_reset;
    calculus_is_recent_like;
  ]
