(* Equivalence of the baseline detectors with the calculus on their
   supported fragment (negation- and instance-free set expressions):
   the Snoop-style tree matches activation *and* activation timestamps,
   the Ode-style automaton matches activation; both refuse negation. *)

open Core

let replay_compare ~check h e =
  let eb = Event_base.create () in
  List.iter
    (fun (t, o) ->
      let occ =
        Event_base.record eb ~etype:Gen.alphabet.(t)
          ~oid:(Ident.Oid.of_int (o + 1))
      in
      check eb occ)
    h;
  ignore e

let tree_matches_calculus =
  Gen.qcheck ~count:400 "tree detector = calculus (sign and stamp)"
    (Gen.arb_history_and_expr Gen.Regular)
    (fun (h, e) ->
      let tree = Tree_detector.create e in
      let result = ref true in
      replay_compare h e ~check:(fun eb occ ->
          Tree_detector.on_event tree ~etype:(Occurrence.etype occ)
            ~timestamp:(Occurrence.timestamp occ);
          let at = Event_base.probe_now eb in
          let env = Ts.env eb ~window:(Window.all ~upto:at) in
          let ts = Ts.ts env ~at e in
          let ok =
            if ts > 0 then Tree_detector.active tree && Tree_detector.value tree = ts
            else not (Tree_detector.active tree)
          in
          if not ok then result := false);
      !result)

let automaton_matches_calculus =
  Gen.qcheck ~count:400 "automaton = calculus (sign)"
    (Gen.arb_history_and_expr Gen.Regular)
    (fun (h, e) ->
      let auto = Automaton.create e in
      let result = ref true in
      replay_compare h e ~check:(fun eb occ ->
          Automaton.on_event auto ~etype:(Occurrence.etype occ);
          let at = Event_base.probe_now eb in
          let env = Ts.env eb ~window:(Window.all ~upto:at) in
          if Ts.active env ~at e <> Automaton.active auto then result := false);
      !result)

let naive_matches_calculus =
  Gen.qcheck ~count:200 "naive detector = calculus (sign, full fragment)"
    (QCheck.make
       ~print:(fun (h, es) ->
         Printf.sprintf "history=[%s] exprs=[%s]" (Gen.print_history h)
           (String.concat "; " (List.map Expr.to_string es)))
       QCheck.Gen.(
         pair Gen.gen_history
           (list_size (int_range 1 4) (Gen.gen_set_expr Gen.Full))))
    (fun (h, es) ->
      let naive = Naive.create es in
      let shadow = Event_base.create () in
      let result = ref true in
      List.iter
        (fun (t, o) ->
          let etype = Gen.alphabet.(t) and oid = Ident.Oid.of_int (o + 1) in
          Naive.on_event naive ~etype ~oid;
          ignore (Event_base.record shadow ~etype ~oid);
          let at = Event_base.probe_now shadow in
          let env = Ts.env shadow ~window:(Window.all ~upto:at) in
          List.iteri
            (fun i e ->
              if Ts.active env ~at e <> Naive.active naive i then
                result := false)
            es)
        h;
      !result)

let test_tree_rejects_negation () =
  match
    Tree_detector.create (Expr.not_ (Expr.prim Gen.alphabet.(0)))
  with
  | exception Tree_detector.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_automaton_rejects_instance () =
  match
    Automaton.create
      (Expr.Inst (Expr.i_conj (Expr.I_prim Gen.alphabet.(0)) (Expr.I_prim Gen.alphabet.(1))))
  with
  | exception Automaton.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_automaton_memoizes () =
  let a = Expr.prim Gen.alphabet.(0)
  and b = Expr.prim Gen.alphabet.(1)
  and c = Expr.prim Gen.alphabet.(2) in
  let e = Expr.disj (Expr.seq a b) (Expr.conj c a) in
  let auto = Automaton.create e in
  (* Drive a long repetitive stream: the lazy DFA must saturate to a small
     number of materialized transitions. *)
  for i = 0 to 999 do
    Automaton.on_event auto ~etype:Gen.alphabet.(i mod 3)
  done;
  Alcotest.(check bool) "few states materialized" true
    (Automaton.states_materialized auto < 64)

let test_reset () =
  let e = Expr.conj (Expr.prim Gen.alphabet.(0)) (Expr.prim Gen.alphabet.(1)) in
  let tree = Tree_detector.create e in
  let auto = Automaton.create e in
  let stamp = Time.of_int 2 in
  Tree_detector.on_event tree ~etype:Gen.alphabet.(0) ~timestamp:stamp;
  Tree_detector.on_event tree ~etype:Gen.alphabet.(1)
    ~timestamp:(Time.of_int 4);
  Automaton.on_event auto ~etype:Gen.alphabet.(0);
  Automaton.on_event auto ~etype:Gen.alphabet.(1);
  Alcotest.(check bool) "tree active" true (Tree_detector.active tree);
  Alcotest.(check bool) "auto active" true (Automaton.active auto);
  Tree_detector.reset tree;
  Automaton.reset auto;
  Alcotest.(check bool) "tree reset" false (Tree_detector.active tree);
  Alcotest.(check bool) "auto reset" false (Automaton.active auto)

let suite =
  [
    tree_matches_calculus;
    automaton_matches_calculus;
    naive_matches_calculus;
    Alcotest.test_case "tree rejects negation" `Quick test_tree_rejects_negation;
    Alcotest.test_case "automaton rejects instance ops" `Quick
      test_automaton_rejects_instance;
    Alcotest.test_case "automaton memoizes transitions" `Quick
      test_automaton_memoizes;
    Alcotest.test_case "detectors reset" `Quick test_reset;
  ]

(* --------------------------------------- instance-oriented tree detector *)

let gen_regular_inst =
  QCheck.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        if n = 0 then map (fun i -> Expr.I_prim Gen.alphabet.(i)) (int_range 0 2)
        else
          frequency
            [
              (1, map (fun i -> Expr.I_prim Gen.alphabet.(i)) (int_range 0 2));
              (2, map2 Expr.i_conj (self (n / 2)) (self (n / 2)));
              (2, map2 Expr.i_disj (self (n / 2)) (self (n / 2)));
              (2, map2 Expr.i_seq (self (n / 2)) (self (n / 2)));
            ]))

let inst_tree_matches_calculus =
  Gen.qcheck ~count:400 "instance tree = calculus lift (sign, stamp, objects)"
    (QCheck.make
       ~print:(fun (h, ie) ->
         Printf.sprintf "history=[%s] expr=%s" (Gen.print_history h)
           (Expr.inst_to_string ie))
       QCheck.Gen.(pair Gen.gen_history gen_regular_inst))
    (fun (h, ie) ->
      let detector = Inst_tree_detector.create ie in
      let eb = Event_base.create () in
      let result = ref true in
      List.iter
        (fun (t, o) ->
          let etype = Gen.alphabet.(t) and oid = Ident.Oid.of_int (o + 1) in
          let occ = Event_base.record eb ~etype ~oid in
          Inst_tree_detector.on_event detector ~etype ~oid
            ~timestamp:(Occurrence.timestamp occ);
          let at = Event_base.probe_now eb in
          let env = Ts.env eb ~window:(Window.all ~upto:at) in
          (* Lifted value. *)
          let lifted = Ts.ts env ~at (Expr.Inst ie) in
          let tree_value = Inst_tree_detector.value detector in
          if lifted > 0 then begin
            if not (Inst_tree_detector.active detector && tree_value = lifted)
            then result := false
          end
          else if Inst_tree_detector.active detector then result := false;
          (* Per-object activation agrees with occurred_objects. *)
          let expected =
            List.map Ident.Oid.to_int (Ts.occurred_objects env ~at ie)
          in
          let got =
            List.sort compare
              (List.map Ident.Oid.to_int
                 (Inst_tree_detector.active_objects detector))
          in
          if List.sort compare expected <> got then result := false)
        h;
      !result)

let test_inst_tree_rejects_negation () =
  match Inst_tree_detector.create (Expr.I_not (Expr.I_prim Gen.alphabet.(0))) with
  | exception Inst_tree_detector.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let suite =
  suite
  @ [
      inst_tree_matches_calculus;
      Alcotest.test_case "instance tree rejects negation" `Quick
        test_inst_tree_rejects_negation;
    ]
