(* Second engine suite: migration events (generalize/specialize), timer
   state across transactions, preserving-rule lifetimes, mid-transaction
   rule definition, and the affected-oid reporting used by scripts. *)

open Core

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "engine error: %a" Engine.pp_error e

let hierarchy_schema () =
  let s = Schema.create () in
  let define name ?super attributes =
    match Schema.define s ~name ?super ~attributes () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "schema: %a" Schema.pp_error e
  in
  define "item" [ ("name", Value.T_str) ];
  define "perishable" ~super:"item" [ ("shelf_days", Value.T_int) ];
  define "log" [ ("tag", Value.T_str) ];
  s

let log_rule name event =
  {
    Rule.name;
    target = None;
    event = Expr_parse.parse_exn event;
    condition = [];
    action =
      [
        Action.A_create
          {
            class_name = "log";
            attrs = [ ("tag", Query.Term (Query.Const (Value.Str name))) ];
            bind = None;
          };
      ];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 0;
  }

let tags engine =
  List.filter_map
    (fun oid ->
      match Object_store.get (Engine.store engine) oid ~attribute:"tag" with
      | Ok (Value.Str s) -> Some s
      | _ -> None)
    (Object_store.extent (Engine.store engine) ~class_name:"log")

let test_migration_events_trigger () =
  let engine = Engine.create (hierarchy_schema ()) in
  let _ = Engine.define_exn engine (log_rule "gen" "generalize(item)") in
  let _ = Engine.define_exn engine (log_rule "spec" "specialize(perishable)") in
  let oids =
    ok
      (Engine.execute_line_affected engine
         [
           Operation.Create
             {
               class_name = "perishable";
               attrs = [ ("name", Value.Str "milk") ];
             };
         ])
  in
  let milk = match oids with [ Some oid ] -> oid | _ -> Alcotest.fail "oid" in
  ok (Engine.execute_line engine [ Operation.Generalize { oid = milk; to_class = "item" } ]);
  Alcotest.(check (list string)) "generalize logged" [ "gen" ] (tags engine);
  ok
    (Engine.execute_line engine
       [ Operation.Specialize { oid = milk; to_class = "perishable" } ]);
  Alcotest.(check (list string)) "specialize logged" [ "gen"; "spec" ]
    (tags engine)

let test_affected_oids_reported () =
  let engine = Engine.create (hierarchy_schema ()) in
  let oids =
    ok
      (Engine.execute_line_affected engine
         [
           Operation.Create { class_name = "item"; attrs = [] };
           Operation.Create { class_name = "item"; attrs = [] };
         ])
  in
  match oids with
  | [ Some a; Some b ] ->
      Alcotest.(check bool) "distinct oids" true (not (Ident.Oid.equal a b))
  | _ -> Alcotest.fail "expected two affected oids"

let test_timer_survives_commit () =
  let engine = Engine.create (hierarchy_schema ()) in
  let tick = Engine.define_timer engine ~name:"t" ~period_lines:3 in
  let _ = Engine.define_exn engine (log_rule "tick" (Expr.to_string (Expr.prim tick))) in
  (* Two lines, then a commit: the countdown (1 remaining) must carry into
     the next transaction, so the tick fires on the first line after it. *)
  ok (Engine.execute_line engine []);
  ok (Engine.execute_line engine []);
  ok (Engine.commit engine);
  Alcotest.(check (list string)) "no tick yet" [] (tags engine);
  ok (Engine.execute_line engine []);
  Alcotest.(check (list string)) "tick after commit" [ "tick" ] (tags engine)

let test_preserving_window_semantics () =
  (* Triggering always consumes (events before a consideration lose the
     capability of triggering, Section 2/4.4); the consumption mode only
     widens the condition's event formulas.  A preserving rule considered
     once does not re-fire on unrelated noise, but when a NEW creation
     re-triggers it, occurred() binds every creation since transaction
     start — so the second execution logs two tags at once. *)
  let spec =
    {
      Rule.name = "p";
      target = None;
      event = Expr_parse.parse_exn "create(item)";
      condition =
        [
          Condition.Occurred
            { expr = Expr_parse.parse_inst_exn "create(item)"; var = "X" };
        ];
      action =
        [
          Action.A_create
            {
              class_name = "log";
              attrs = [ ("tag", Query.Term (Query.Const (Value.Str "p"))) ];
              bind = None;
            };
        ];
      coupling = Rule.Immediate;
      consumption = Rule.Preserving;
      priority = 0;
    }
  in
  let engine = Engine.create (hierarchy_schema ()) in
  let _ = Engine.define_exn engine spec in
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "item"; attrs = [] } ]);
  Alcotest.(check int) "one binding on first firing" 1
    (List.length (List.filter (String.equal "p") (tags engine)));
  (* Unrelated noise: old events no longer trigger. *)
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "log"; attrs = [ ("tag", Value.Str "noise") ] } ]);
  Alcotest.(check int) "no re-firing on noise" 1
    (List.length (List.filter (String.equal "p") (tags engine)));
  (* A second creation re-triggers; the preserving formula window binds
     BOTH items, so the set-oriented execution logs two more tags. *)
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "item"; attrs = [] } ]);
  Alcotest.(check int) "second firing binds both creations" 3
    (List.length (List.filter (String.equal "p") (tags engine)));
  (* After commit the transaction window restarts: a fresh creation binds
     only itself. *)
  ok (Engine.commit engine);
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "item"; attrs = [] } ]);
  Alcotest.(check int) "fresh transaction binds only the new creation" 4
    (List.length (List.filter (String.equal "p") (tags engine)))

let test_rule_defined_mid_transaction () =
  (* A rule defined mid-transaction sees the events since the transaction
     start (its windows are anchored at tx_start). *)
  let engine = Engine.create (hierarchy_schema ()) in
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "item"; attrs = [] } ]);
  let _ = Engine.define_exn engine (log_rule "late" "create(item)") in
  (* Any further activity lets the trigger support notice the old event. *)
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "log"; attrs = [ ("tag", Value.Str "noise") ] } ]);
  Alcotest.(check bool) "late rule fired on the earlier creation" true
    (List.mem "late" (tags engine))

let test_remove_rule_stops_firing () =
  let engine = Engine.create (hierarchy_schema ()) in
  let _ = Engine.define_exn engine (log_rule "r" "create(item)") in
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "item"; attrs = [] } ]);
  Alcotest.(check int) "fired once" 1
    (List.length (List.filter (String.equal "r") (tags engine)));
  (match Rule_table.remove (Engine.rules engine) "r" with
  | Ok () -> ()
  | Error (`Rule_error msg) -> Alcotest.fail msg);
  ok
    (Engine.execute_line engine
       [ Operation.Create { class_name = "item"; attrs = [] } ]);
  Alcotest.(check int) "silent after removal" 1
    (List.length (List.filter (String.equal "r") (tags engine)))

let suite =
  [
    Alcotest.test_case "migration events trigger rules" `Quick
      test_migration_events_trigger;
    Alcotest.test_case "affected oids reported" `Quick
      test_affected_oids_reported;
    Alcotest.test_case "timer countdown survives commit" `Quick
      test_timer_survives_commit;
    Alcotest.test_case "preserving windows (formulas, not triggering)" `Quick
      test_preserving_window_semantics;
    Alcotest.test_case "rule defined mid-transaction" `Quick
      test_rule_defined_mid_transaction;
    Alcotest.test_case "removing a rule stops it" `Quick
      test_remove_rule_stops_firing;
  ]
