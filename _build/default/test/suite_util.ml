(* Foundations: the even/odd clock discipline, the deterministic PRNG, and
   the growable vector's binary searches. *)

open Core

let test_clock_discipline () =
  let clock = Time.Clock.create () in
  let t1 = Time.Clock.next_event_instant clock in
  let t2 = Time.Clock.next_event_instant clock in
  Alcotest.(check bool) "event instants are even" true
    (Time.is_event_instant t1 && Time.is_event_instant t2);
  Alcotest.(check bool) "strictly increasing" true (Time.( < ) t1 t2);
  Alcotest.(check bool) "probe between any two events" true
    (Time.is_probe_instant (Time.probe_before t2)
    && Time.( < ) t1 (Time.probe_before t2));
  let probe = Time.Clock.probe_now clock in
  Alcotest.(check bool) "probe_now after all events" true
    (Time.is_probe_instant probe && Time.( > ) probe t2)

let test_clock_advance () =
  let clock = Time.Clock.create () in
  Time.Clock.advance_to clock (Time.of_int 100);
  let t = Time.Clock.next_event_instant clock in
  Alcotest.(check bool) "past the advance" true (Time.( > ) t (Time.of_int 100))

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  let xs = List.init 20 (fun _ -> Prng.next_int a ~bound:1000) in
  let ys = List.init 20 (fun _ -> Prng.next_int b ~bound:1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Prng.create ~seed:43 in
  let zs = List.init 20 (fun _ -> Prng.next_int c ~bound:1000) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_prng_bounds () =
  let p = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.next_int p ~bound:10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done;
  let f = Prng.next_float p in
  Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
  match Prng.next_int p ~bound:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid bound"

let test_vec_bisect () =
  let v = Vec.create ~dummy:0 in
  List.iter (Vec.push v) [ 2; 4; 4; 8; 10 ];
  let key x = x in
  Alcotest.(check int) "bisect_right finds last <= 4" 2 (Vec.bisect_right v ~key 4);
  Alcotest.(check int) "bisect_right below all" (-1) (Vec.bisect_right v ~key 1);
  Alcotest.(check int) "bisect_right above all" 4 (Vec.bisect_right v ~key 99);
  Alcotest.(check int) "bisect_after 4 is index 3" 3 (Vec.bisect_after v ~key 4);
  Alcotest.(check int) "bisect_after 10 is length" 5 (Vec.bisect_after v ~key 10)

let test_vec_growth () =
  let v = Vec.create ~dummy:(-1) in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "get" 567 (Vec.get v 567);
  Alcotest.(check (option int)) "last" (Some 999) (Vec.last v);
  Alcotest.(check int) "fold" (999 * 1000 / 2) (Vec.fold ( + ) 0 v);
  match Vec.get v 1000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out of bounds"

let test_pretty_table () =
  let t =
    Pretty.table ~title:"demo" ~header:[ "name"; "value" ]
      ~aligns:[ Pretty.Left; Pretty.Right ] ()
  in
  Pretty.add_row t [ "a"; "1" ];
  Pretty.add_row t [ "long-name"; "12345" ];
  let rendered = Pretty.render t in
  Alcotest.(check bool) "has title" true (Astring_contains.contains rendered "demo");
  Alcotest.(check bool) "has separator" true (Astring_contains.contains rendered "|-");
  (match Pretty.add_row t [ "wrong" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity mismatch");
  Alcotest.(check string) "ns formatting" "1.50us" (Pretty.ns_cell 1500.0);
  Alcotest.(check string) "ms formatting" "2.50ms" (Pretty.ns_cell 2.5e6)

let suite =
  [
    Alcotest.test_case "clock discipline" `Quick test_clock_discipline;
    Alcotest.test_case "clock advance" `Quick test_clock_advance;
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "vec bisect" `Quick test_vec_bisect;
    Alcotest.test_case "vec growth" `Quick test_vec_growth;
    Alcotest.test_case "pretty tables" `Quick test_pretty_table;
  ]
