(* Model-based testing of the object store: random operation sequences are
   applied both to the real store and to a naive purely-functional model;
   observable state (extents, attribute reads, classes) must agree after
   every step. *)

open Core

(* The model: an association list of (oid, class, attrs, deleted). *)
module Model = struct
  type obj = {
    class_name : string;
    attrs : (string * Value.t) list;
    deleted : bool;
  }

  type t = { mutable next : int; mutable objs : (int * obj) list }

  let create () = { next = 1; objs = [] }

  let insert t ~class_name ~declared =
    let oid = t.next in
    t.next <- oid + 1;
    let attrs = List.map (fun (a, _) -> (a, Value.Null)) declared in
    t.objs <- (oid, { class_name; attrs; deleted = false }) :: t.objs;
    oid

  let find t oid =
    match List.assoc_opt oid t.objs with
    | Some o when not o.deleted -> Some o
    | _ -> None

  let set t oid attr v =
    match find t oid with
    | None -> ()
    | Some o ->
        let attrs = (attr, v) :: List.remove_assoc attr o.attrs in
        t.objs <- (oid, { o with attrs }) :: List.remove_assoc oid t.objs

  let delete t oid =
    match find t oid with
    | None -> ()
    | Some o ->
        t.objs <- (oid, { o with deleted = true }) :: List.remove_assoc oid t.objs

  let migrate t oid ~to_class ~declared =
    match find t oid with
    | None -> ()
    | Some o ->
        let attrs =
          List.map
            (fun (a, _) ->
              (a, Option.value ~default:Value.Null (List.assoc_opt a o.attrs)))
            declared
        in
        t.objs <-
          (oid, { class_name = to_class; attrs; deleted = false })
          :: List.remove_assoc oid t.objs

  let extent t schema ~class_name =
    List.sort compare
      (List.filter_map
         (fun (oid, o) ->
           if
             (not o.deleted)
             && Schema.is_subclass schema ~sub:o.class_name ~super:class_name
           then Some oid
           else None)
         t.objs)
end

(* The class hierarchy under test: base <- mid <- leaf. *)
let schema () =
  let s = Schema.create () in
  let define name ?super attributes =
    match Schema.define s ~name ?super ~attributes () with
    | Ok _ -> ()
    | Error _ -> assert false
  in
  define "base" [ ("x", Value.T_int) ];
  define "mid" ~super:"base" [ ("y", Value.T_int) ];
  define "leaf" ~super:"mid" [ ("z", Value.T_int) ];
  s

let classes = [| "base"; "mid"; "leaf" |]
let attrs_of = function
  | "base" -> [ ("x", Value.T_int) ]
  | "mid" -> [ ("x", Value.T_int); ("y", Value.T_int) ]
  | _ -> [ ("x", Value.T_int); ("y", Value.T_int); ("z", Value.T_int) ]

(* Op encoding: (kind, class-index, object-index, payload). *)
let arb_ops =
  QCheck.make
    ~print:(fun ops -> Printf.sprintf "%d ops" (List.length ops))
    QCheck.Gen.(
      list_size (int_range 0 40)
        (quad (int_range 0 4) (int_range 0 2) (int_range 0 30) (int_range 0 99)))

let store_model_agree =
  Gen.qcheck ~count:300 "object store = naive model" arb_ops (fun ops ->
      let s = schema () in
      let store = Object_store.create s in
      let model = Model.create () in
      let ok = ref true in
      let pick_oid idx =
        (* A dense guess over issued oids; invalid ones exercise errors. *)
        idx + 1
      in
      List.iter
        (fun (kind, ci, oi, payload) ->
          let class_name = classes.(ci) in
          match kind with
          | 0 ->
              (* insert *)
              let real = Object_store.insert store ~class_name ~attrs:[] in
              let modelled =
                Model.insert model ~class_name ~declared:(attrs_of class_name)
              in
              (match real with
              | Ok oid ->
                  if Ident.Oid.to_int oid <> modelled then ok := false
              | Error _ -> ok := false)
          | 1 ->
              (* set an attribute the class may not have *)
              let oid = Ident.Oid.of_int (pick_oid oi) in
              let attr = [| "x"; "y"; "z" |].(payload mod 3) in
              let value = Value.Int payload in
              let real = Object_store.set store oid ~attribute:attr ~value in
              (match (real, Model.find model (pick_oid oi)) with
              | Ok (), Some o
                when List.mem_assoc attr (attrs_of o.Model.class_name) ->
                  Model.set model (pick_oid oi) attr value
              | Ok (), _ -> ok := false
              | Error _, Some o
                when List.mem_assoc attr (attrs_of o.Model.class_name) ->
                  ok := false
              | Error _, _ -> ())
          | 2 ->
              (* delete *)
              let oid = Ident.Oid.of_int (pick_oid oi) in
              let real = Object_store.delete store oid in
              (match (real, Model.find model (pick_oid oi)) with
              | Ok (), Some _ -> Model.delete model (pick_oid oi)
              | Ok (), None -> ok := false
              | Error _, Some _ -> ok := false
              | Error _, None -> ())
          | 3 ->
              (* generalize one level if possible *)
              let oid = Ident.Oid.of_int (pick_oid oi) in
              let target = classes.(max 0 (ci - 1)) in
              let real = Object_store.generalize store oid ~to_class:target in
              (match (real, Model.find model (pick_oid oi)) with
              | Ok (), Some o
                when Schema.is_subclass s ~sub:o.Model.class_name ~super:target
                ->
                  Model.migrate model (pick_oid oi) ~to_class:target
                    ~declared:(attrs_of target)
              | Ok (), _ -> ok := false
              | Error _, Some o
                when Schema.is_subclass s ~sub:o.Model.class_name ~super:target
                ->
                  ok := false
              | Error _, _ -> ())
          | _ ->
              (* observe: extents of every class and one attribute *)
              Array.iter
                (fun c ->
                  let real =
                    List.map Ident.Oid.to_int (Object_store.extent store ~class_name:c)
                  in
                  if real <> Model.extent model s ~class_name:c then ok := false)
                classes;
              let oid = pick_oid oi in
              let real = Object_store.get store (Ident.Oid.of_int oid) ~attribute:"x" in
              (match (real, Model.find model oid) with
              | Ok v, Some o ->
                  let expected =
                    Option.value ~default:Value.Null
                      (List.assoc_opt "x" o.Model.attrs)
                  in
                  if not (Value.equal v expected) then ok := false
              | Ok _, None -> ok := false
              | Error _, Some _ -> ok := false
              | Error _, None -> ()))
        ops;
      (* Final full agreement on extents. *)
      Array.iter
        (fun c ->
          let real =
            List.map Ident.Oid.to_int (Object_store.extent store ~class_name:c)
          in
          if real <> Model.extent model (schema ()) ~class_name:c then
            ok := false)
        classes;
      !ok)

let suite = [ store_model_agree ]
