(* Tests for the script language: lexing, parsing, and end-to-end script
   execution including the paper's checkStockQty written in concrete
   syntax. *)

open Core

let ok = function
  | Ok x -> x
  | Error msg -> Alcotest.failf "script error: %s" msg

let quickstart_script =
  {|
-- The paper's running example, in concrete syntax.
define class stock (quantity: integer, maxquantity: integer, minquantity: integer);

define immediate trigger checkStockQty for stock
  events { create(stock) }
  condition stock(S), occurred({ create(stock) }, S),
            S.quantity > S.maxquantity
  actions modify(S.quantity, S.maxquantity)
  consuming priority 5
end;

create stock(quantity = 50, maxquantity = 10, minquantity = 0) as X;
create stock(quantity = 5, maxquantity = 10, minquantity = 0) as Y;
show stock;
commit;
|}

let test_quickstart () =
  let interp = Interp.create () in
  ok (Interp.run_string interp quickstart_script);
  let out = Interp.output interp in
  Alcotest.(check bool) "X clamped to 10" true
    (Astring_contains.contains out "quantity=10");
  Alcotest.(check bool) "Y kept at 5" true
    (Astring_contains.contains out "quantity=5")

let test_line_groups_block () =
  (* begin ... end groups several DMLs into one transaction line; the rule
     must process both creations in a single set-oriented execution. *)
  let interp = Interp.create () in
  ok
    (Interp.run_string interp
       {|
define class stock (quantity: integer, maxquantity: integer, minquantity: integer);
define immediate trigger clamp for stock
  events { create(stock) }
  condition stock(S), occurred({ create(stock) }, S), S.quantity > S.maxquantity
  actions modify(S.quantity, S.maxquantity)
end;
begin
  create stock(quantity = 30, maxquantity = 10, minquantity = 0);
  create stock(quantity = 40, maxquantity = 20, minquantity = 0);
end;
|});
  let stats = Engine.statistics (Interp.engine interp) in
  Alcotest.(check int) "one execution for both" 1 stats.Engine.executions

let test_composite_event_trigger () =
  (* An instance-oriented precedence in concrete syntax: create followed by
     a quantity drop on the same object. *)
  let interp = Interp.create () in
  ok
    (Interp.run_string interp
       {|
define class stock (quantity: integer, maxquantity: integer, minquantity: integer);
define class stockOrder (delquantity: integer);

define immediate trigger reorder
  events { create(stock) <= modify(stock.quantity) }
  condition occurred({ create(stock) <= modify(stock.quantity) }, S),
            S.quantity < S.minquantity
  actions create stockOrder(delquantity = S.maxquantity - S.quantity)
end;

create stock(quantity = 50, maxquantity = 100, minquantity = 10) as X;
modify X.quantity = 3;
show stockOrder;
|});
  let out = Interp.output interp in
  Alcotest.(check bool) "order created with delquantity=97" true
    (Astring_contains.contains out "delquantity=97")

let test_inheritance_and_migration () =
  let interp = Interp.create () in
  ok
    (Interp.run_string interp
       {|
define class item (name: string);
define class perishable extends item (shelf_days: integer);
create perishable(name = "milk", shelf_days = 7) as M;
generalize M to item;
show item;
|});
  let out = Interp.output interp in
  Alcotest.(check bool) "migrated object listed under item" true
    (Astring_contains.contains out "milk")

let test_parse_errors_are_reported () =
  let interp = Interp.create () in
  (match Interp.run_string interp "create stock(" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a parse error");
  match Interp.run_string interp "define class c (x: integer); modify Z.x = 1;" with
  | Error msg ->
      Alcotest.(check bool) "unbound variable reported" true
        (Astring_contains.contains msg "unbound")
  | Ok () -> Alcotest.fail "expected an unbound-variable error"

let test_select_generates_events () =
  (* select is an event source: a rule on select(stock) fires after a
     query. *)
  let interp = Interp.create () in
  ok
    (Interp.run_string interp
       {|
define class stock (quantity: integer, maxquantity: integer, minquantity: integer);
define class audit (count: integer);
define immediate trigger onSelect
  events { select(stock) }
  actions create audit(count = 1)
end;
create stock(quantity = 1, maxquantity = 10, minquantity = 0);
select stock;
show audit;
|});
  let out = Interp.output interp in
  Alcotest.(check bool) "audit row created" true
    (Astring_contains.contains out "count=1")

let suite =
  [
    Alcotest.test_case "quickstart script (checkStockQty)" `Quick
      test_quickstart;
    Alcotest.test_case "begin/end groups one line" `Quick test_line_groups_block;
    Alcotest.test_case "composite instance event in syntax" `Quick
      test_composite_event_trigger;
    Alcotest.test_case "inheritance and generalize" `Quick
      test_inheritance_and_migration;
    Alcotest.test_case "errors are reported" `Quick
      test_parse_errors_are_reported;
    Alcotest.test_case "select generates events" `Quick
      test_select_generates_events;
  ]
