(* The workload library: generator profiles, stream bounds, batch
   deduplication, scenario rules, and reproducibility. *)

open Core

let alphabet = Domain.abstract_alphabet 5

let profile_respected =
  Gen.qcheck ~count:200 "regular profile yields baseline-compatible exprs"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let prng = Prng.create ~seed in
      let e =
        Expr_gen.gen prng ~profile:Expr_gen.regular_profile ~alphabet ~depth:4 ()
      in
      Expr.is_regular e)

let boolean_profile_no_instance =
  Gen.qcheck ~count:200 "boolean profile never emits instance operators"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let prng = Prng.create ~seed in
      let e =
        Expr_gen.gen prng ~profile:Expr_gen.boolean_profile ~alphabet ~depth:4 ()
      in
      not (Expr.has_instance e))

let test_stream_bounds () =
  let prng = Prng.create ~seed:5 in
  let stream = Expr_gen.stream prng ~alphabet ~objects:7 ~length:500 in
  Alcotest.(check int) "length" 500 (List.length stream);
  List.iter
    (fun (etype, oid) ->
      let i = Ident.Oid.to_int oid in
      if i < 1 || i > 7 then Alcotest.failf "oid out of range: %d" i;
      if not (List.exists (Event_type.equal etype) alphabet) then
        Alcotest.fail "type outside alphabet")
    stream

let test_batch_distinct () =
  let prng = Prng.create ~seed:6 in
  let batch =
    Expr_gen.batch prng ~profile:Expr_gen.boolean_profile ~alphabet ~depth:3
      ~count:20 ()
  in
  let rec all_distinct = function
    | [] -> true
    | e :: rest -> (not (List.exists (Expr.equal e) rest)) && all_distinct rest
  in
  Alcotest.(check bool) "batch has no duplicates" true (all_distinct batch);
  Alcotest.(check bool) "batch non-trivial" true (List.length batch >= 10)

let test_generators_reproducible () =
  let run seed =
    let prng = Prng.create ~seed in
    let exprs =
      Expr_gen.batch prng ~profile:Expr_gen.full_profile ~alphabet ~depth:3
        ~count:5 ()
    in
    List.map Expr.to_string exprs
  in
  Alcotest.(check (list string)) "same seed, same batch" (run 77) (run 77);
  Alcotest.(check bool) "different seed, different batch" true
    (run 77 <> run 78)

let test_scenario_reorder_rule () =
  let engine = Scenario.engine () in
  Engine.execute_line_exn engine
    [ Domain.new_stock ~quantity:40 ~maxquantity:90 ~minquantity:15 ];
  let stock =
    List.hd (Object_store.extent (Engine.store engine) ~class_name:"stock")
  in
  Engine.execute_line_exn engine
    [
      Operation.Modify
        { oid = stock; attribute = "quantity"; value = Value.Int 4 };
    ];
  match Object_store.extent (Engine.store engine) ~class_name:"stockOrder" with
  | [ order ] -> (
      match
        ( Object_store.get (Engine.store engine) order ~attribute:"delquantity",
          Object_store.get (Engine.store engine) order ~attribute:"stock_ref" )
      with
      | Ok (Value.Int del), Ok (Value.Oid ref_) ->
          Alcotest.(check int) "delquantity = max - quantity" 86 del;
          Alcotest.(check bool) "references the product" true
            (Ident.Oid.equal ref_ stock)
      | _ -> Alcotest.fail "order attributes")
  | other -> Alcotest.failf "expected one order, got %d" (List.length other)

let test_inventory_traffic_deterministic () =
  let run () =
    let engine = Scenario.engine () in
    let prng = Prng.create ~seed:31 in
    Scenario.run_inventory_traffic prng engine ~lines:40 ~ops_per_line:4;
    let stats = Engine.statistics engine in
    ( stats.Engine.events,
      stats.Engine.executions,
      List.length (Object_store.extent (Engine.store engine) ~class_name:"stock")
    )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical replays" true (a = b)

let suite =
  [
    profile_respected;
    boolean_profile_no_instance;
    Alcotest.test_case "stream bounds" `Quick test_stream_bounds;
    Alcotest.test_case "batch deduplicates" `Quick test_batch_distinct;
    Alcotest.test_case "generators reproducible" `Quick
      test_generators_reproducible;
    Alcotest.test_case "scenario reorder rule" `Quick test_scenario_reorder_rule;
    Alcotest.test_case "inventory traffic deterministic" `Quick
      test_inventory_traffic_deterministic;
  ]
