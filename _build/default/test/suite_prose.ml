(* The sample expressions discussed in the prose of Sections 3.1 and 3.2:
   each "the first one is active when ... instead the second one ..."
   sentence becomes a test discriminating the two granularities on a
   stream engineered to separate them. *)

open Core

let show_m = Domain.modify_show_quantity
let stock_c = Domain.create_stock
let stock_m = Domain.modify_stock_quantity
let stock_mmin = Domain.modify_stock_minquantity
let order_c = Domain.create_stock_order
let order_m = Domain.modify_order_delquantity

let replay occs =
  let eb = Event_base.create () in
  List.iter
    (fun (etype, o) ->
      ignore (Event_base.record eb ~etype ~oid:(Ident.Oid.of_int o)))
    occs;
  eb

let active eb e =
  let at = Event_base.probe_now eb in
  Ts.active (Ts.env eb ~window:(Window.all ~upto:at)) ~at e

let parse = Expr_parse.parse_exn

(* Section 3.2: "modify(show.quantity) + (create(stock) += modify(stock.quantity))"
   vs the set-oriented conjunction: the instance version needs the same
   stock object created and modified. *)
let test_conjunction_granularity () =
  let inst =
    parse "modify(show.quantity) + (create(stock) += modify(stock.quantity))"
  in
  let set_ =
    parse "modify(show.quantity) + create(stock) + modify(stock.quantity)"
  in
  (* Cross-object stream: create o1, modify o2, show change. *)
  let cross = replay [ (stock_c, 1); (stock_m, 2); (show_m, 9) ] in
  Alcotest.(check bool) "set version active cross-object" true
    (active cross set_);
  Alcotest.(check bool) "instance version inactive cross-object" false
    (active cross inst);
  (* Same-object stream separates nothing: both active. *)
  let same = replay [ (stock_c, 1); (stock_m, 1); (show_m, 9) ] in
  Alcotest.(check bool) "set version active same-object" true (active same set_);
  Alcotest.(check bool) "instance version active same-object" true
    (active same inst)

(* Section 3.2: the two negation variants — "no stock object has been
   created AND modified" (instance) vs "neither a creation nor a
   modification at all" (set). *)
let test_negation_granularity () =
  let inst =
    parse "modify(show.quantity) + -(create(stock) += modify(stock.quantity))"
  in
  let set_ =
    parse "modify(show.quantity) + -(create(stock) + modify(stock.quantity))"
  in
  (* Cross-object: a creation on o1 and a modification on o2 — no single
     object has both, so the instance negation holds; but both event types
     occurred, so the set negation fails. *)
  let cross = replay [ (stock_c, 1); (stock_m, 2); (show_m, 9) ] in
  Alcotest.(check bool) "instance negation active cross-object" true
    (active cross inst);
  Alcotest.(check bool) "set negation inactive cross-object" false
    (active cross set_);
  (* Same object: both fail. *)
  let same = replay [ (stock_c, 1); (stock_m, 1); (show_m, 9) ] in
  Alcotest.(check bool) "instance negation inactive same-object" false
    (active same inst);
  (* Only a creation: the set conjunction under the negation is not active
     (missing modification), so both negations hold. *)
  let only_create = replay [ (stock_c, 1); (show_m, 9) ] in
  Alcotest.(check bool) "instance negation with only a create" true
    (active only_create inst);
  Alcotest.(check bool) "set negation with only a create" true
    (active only_create set_)

(* Section 3.2: the precedence pair — same-object create-then-modify vs
   any creation followed by any modification. *)
let test_precedence_granularity () =
  let inst =
    parse "modify(show.quantity) + (create(stock) <= modify(stock.quantity))"
  in
  let set_ =
    parse "modify(show.quantity) + (create(stock) < modify(stock.quantity))"
  in
  let cross = replay [ (stock_c, 1); (stock_m, 2); (show_m, 9) ] in
  Alcotest.(check bool) "set precedence active cross-object" true
    (active cross set_);
  Alcotest.(check bool) "instance precedence inactive cross-object" false
    (active cross inst)

(* Section 3.1's full sample expression: active under each of its two
   disjuncts independently. *)
let test_sample_expression_branches () =
  let e = Scenario.sample_composite_event in
  (* Branch 1: show change with no completed order sequence. *)
  let quiet = replay [ (show_m, 9) ] in
  Alcotest.(check bool) "quiet branch" true (active quiet e);
  (* Completing the order sequence kills branch 1... *)
  let ordered = replay [ (show_m, 9); (order_c, 5); (order_m, 5) ] in
  Alcotest.(check bool) "order sequence defeats branch 1" false
    (active ordered e);
  (* ...but branch 2 (minquantity then quantity) reactivates the whole
     disjunction even then. *)
  let reconfigured =
    replay
      [ (show_m, 9); (order_c, 5); (order_m, 5); (stock_mmin, 1); (stock_m, 1) ]
  in
  Alcotest.(check bool) "stock reconfiguration branch" true
    (active reconfigured e);
  (* Branch 2 requires the order: min after quantity does not count. *)
  let wrong_order = replay [ (stock_m, 1); (stock_mmin, 1) ] in
  Alcotest.(check bool) "wrong order inactive" false (active wrong_order e)

(* Section 3.2's three-expression comparison around instance disjunction:
   a ,= b inside an instance context vs plain set disjunction — on
   primitives the set-wise effect coincides (the text calls this out). *)
let test_instance_disjunction_on_primitives () =
  let lifted = parse "create(stock) ,= modify(stock.quantity)" in
  let set_ = parse "create(stock) , modify(stock.quantity)" in
  List.iter
    (fun stream ->
      let eb = replay stream in
      Alcotest.(check bool)
        "primitive instance disjunction = set disjunction"
        (active eb set_) (active eb lifted))
    [
      [];
      [ (stock_c, 1) ];
      [ (stock_m, 2) ];
      [ (stock_c, 1); (stock_m, 2) ];
      [ (show_m, 3) ];
    ]

let suite =
  [
    Alcotest.test_case "conjunction granularity (3.2)" `Quick
      test_conjunction_granularity;
    Alcotest.test_case "negation granularity (3.2)" `Quick
      test_negation_granularity;
    Alcotest.test_case "precedence granularity (3.2)" `Quick
      test_precedence_granularity;
    Alcotest.test_case "sample expression branches (3.1)" `Quick
      test_sample_expression_branches;
    Alcotest.test_case "instance disjunction on primitives (3.2)" `Quick
      test_instance_disjunction_on_primitives;
  ]

(* Section 3.2's third disjunction expression: the creation and the inner
   disjunct must hit the SAME object ("a creation of a stock object on
   which either a modification of the minimum quantity or a modification
   of the quantity occur"). *)
let test_instance_disjunction_composition () =
  let e =
    parse
      "modify(show.quantity) + (create(stock) += (modify(stock.minquantity) \
       ,= modify(stock.quantity)))"
  in
  (* Same object: active. *)
  let same = replay [ (stock_c, 1); (stock_mmin, 1); (show_m, 9) ] in
  Alcotest.(check bool) "same object" true (active same e);
  (* Creation on o1, modification on o2: the instance conjunction fails. *)
  let cross = replay [ (stock_c, 1); (stock_mmin, 2); (show_m, 9) ] in
  Alcotest.(check bool) "cross object" false (active cross e);
  (* Either modification qualifies. *)
  let qty = replay [ (stock_c, 1); (stock_m, 1); (show_m, 9) ] in
  Alcotest.(check bool) "quantity variant" true (active qty e)

let suite =
  suite
  @ [
      Alcotest.test_case "instance disjunction composition (3.2)" `Quick
        test_instance_disjunction_composition;
    ]
