(* Expression ADT, operator metadata (Fig. 1 / Fig. 2), printer and
   parser: unit cases for priorities and stratification, and a print/parse
   roundtrip property. *)

open Core

let parse = Expr_parse.parse_exn

let shape =
  Alcotest.testable (fun ppf e -> Expr.pp ppf e) Expr.equal

let p name = Expr.prim (Event_type.external_ ~name ~class_name:"obj")
let ip name = Expr.I_prim (Event_type.external_ ~name ~class_name:"obj")

let test_priorities () =
  (* Negation > conjunction/precedence > disjunction. *)
  Alcotest.check shape "neg binds tightest"
    (Expr.conj (Expr.not_ (p "a")) (p "b"))
    (parse "-a(obj) + b(obj)");
  Alcotest.check shape "conj before disj"
    (Expr.disj (Expr.conj (p "a") (p "b")) (p "c"))
    (parse "a(obj) + b(obj) , c(obj)");
  Alcotest.check shape "seq and conj associate left"
    (Expr.seq (Expr.conj (p "a") (p "b")) (p "c"))
    (parse "a(obj) + b(obj) < c(obj)");
  Alcotest.check shape "parens override"
    (Expr.conj (p "a") (Expr.disj (p "b") (p "c")))
    (parse "a(obj) + (b(obj) , c(obj))")

let test_instance_parsing () =
  Alcotest.check shape "instance ops bind tighter than set ops"
    (Expr.conj (p "a") (Expr.Inst (Expr.I_seq (ip "b", ip "c"))))
    (parse "a(obj) + b(obj) <= c(obj)");
  Alcotest.check shape "instance negation"
    (Expr.Inst (Expr.I_not (Expr.I_and (ip "a", ip "b"))))
    (parse "-=(a(obj) += b(obj))")

let test_stratification_rejected () =
  match Expr_parse.parse "(a(obj) + b(obj)) <= c(obj)" with
  | Error msg ->
      Alcotest.(check bool) "mentions the violation" true
        (Astring_contains.contains msg "set-oriented")
  | Ok e -> Alcotest.failf "unexpectedly parsed: %s" (Expr.to_string e)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Expr_parse.parse s with
      | Error _ -> ()
      | Ok e -> Alcotest.failf "%S unexpectedly parsed to %s" s (Expr.to_string e))
    [ ""; "( a(obj)"; "a(obj) +"; "+ a(obj)"; "a(obj) b(obj)"; "a(" ]

let test_operator_table () =
  (* Fig. 1: four operators, each with instance and set symbols, in
     decreasing priority order. *)
  let table = Expr.operator_table in
  Alcotest.(check int) "four rows" 4 (List.length table);
  let priorities = List.map (fun (op, _, _) -> Expr.operator_priority op) table in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "decreasing priority" true (non_increasing priorities);
  List.iter
    (fun (op, inst_sym, set_sym) ->
      Alcotest.(check string) "instance symbol has = suffix" (set_sym ^ "=") inst_sym;
      match op with
      | Expr.Precedence ->
          Alcotest.(check string) "temporal dimension" "temporal"
            (Expr.operator_dimension op)
      | _ ->
          Alcotest.(check string) "boolean dimension" "boolean"
            (Expr.operator_dimension op))
    table

let test_measures () =
  let e = parse "a(obj) + -(b(obj) , c(obj))" in
  Alcotest.(check int) "size" 6 (Expr.size e);
  Alcotest.(check int) "depth" 3 (Expr.depth e);
  Alcotest.(check bool) "has negation" true (Expr.has_negation e);
  Alcotest.(check bool) "not regular" false (Expr.is_regular e);
  Alcotest.(check int) "three primitives" 3
    (Event_type.Set.cardinal (Expr.primitives e))

let test_smart_inst_collapse () =
  Alcotest.check shape "Inst of a primitive collapses" (p "a") (Expr.inst (ip "a"))

let roundtrip =
  Gen.qcheck ~count:500 "print/parse roundtrip"
    (Gen.arb_set_expr Gen.Full)
    (fun e ->
      match Expr_parse.parse (Expr.to_string e) with
      | Ok e' -> Expr.equal e e'
      | Error msg -> QCheck.Test.fail_reportf "%s: %s" (Expr.to_string e) msg)

let roundtrip_inst =
  Gen.qcheck ~count:300 "instance print/parse roundtrip" Gen.arb_inst_expr
    (fun ie ->
      match Expr_parse.parse_inst (Expr.inst_to_string ie) with
      | Ok ie' -> Expr.equal_inst ie ie'
      | Error msg ->
          QCheck.Test.fail_reportf "%s: %s" (Expr.inst_to_string ie) msg)

let suite =
  [
    Alcotest.test_case "operator priorities" `Quick test_priorities;
    Alcotest.test_case "instance-oriented parsing" `Quick test_instance_parsing;
    Alcotest.test_case "stratification violation rejected" `Quick
      test_stratification_rejected;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "Fig. 1 operator table" `Quick test_operator_table;
    Alcotest.test_case "structural measures" `Quick test_measures;
    Alcotest.test_case "Inst collapses on primitives" `Quick
      test_smart_inst_collapse;
    roundtrip;
    roundtrip_inst;
  ]
