(* The event substrate: event types, the Event Base of Fig. 3, the
   attribute functions of Fig. 4, indexes and windows. *)

open Core

let test_event_type_roundtrip () =
  let cases =
    [
      "create(stock)";
      "delete(stock)";
      "modify(stock.quantity)";
      "modify(show)";
      "generalize(item)";
      "specialize(item)";
      "select(stock)";
    ]
  in
  List.iter
    (fun s ->
      match Event_type.of_string s with
      | Ok t -> Alcotest.(check string) s s (Event_type.to_string t)
      | Error msg -> Alcotest.fail msg)
    cases

let test_event_type_errors () =
  List.iter
    (fun s ->
      match Event_type.of_string s with
      | Error _ -> ()
      | Ok t -> Alcotest.failf "%s unexpectedly parsed to %s" s (Event_type.to_string t))
    [ ""; "create("; "()"; "create()" ]

let test_modify_generalization () =
  let qualified = Event_type.modify ~attribute:"quantity" ~class_name:"stock" () in
  let unqualified = Event_type.modify ~class_name:"stock" () in
  Alcotest.(check bool) "modify(stock) covers modify(stock.quantity)" true
    (Event_type.generalizes ~subscription:unqualified ~occurrence:qualified);
  Alcotest.(check bool) "not the converse" false
    (Event_type.generalizes ~subscription:qualified ~occurrence:unqualified);
  let other = Event_type.modify ~attribute:"quantity" ~class_name:"show" () in
  Alcotest.(check bool) "different class does not match" false
    (Event_type.generalizes ~subscription:unqualified ~occurrence:other)

(* Fig. 3's example event base and Fig. 4's attribute functions. *)
let fig3_event_base () =
  let eb = Event_base.create () in
  let o1 = Ident.Oid.of_int 1
  and o2 = Ident.Oid.of_int 2
  and o3 = Ident.Oid.of_int 3
  and o4 = Ident.Oid.of_int 4 in
  let record etype oid = Event_base.record eb ~etype ~oid in
  let e1 = record (Event_type.create ~class_name:"stock") o1 in
  let e2 = record (Event_type.create ~class_name:"stock") o2 in
  let e3 = record (Event_type.create ~class_name:"order") o3 in
  let e4 = record (Event_type.create ~class_name:"notFilledOrder") o4 in
  let e5 = record (Event_type.modify ~attribute:"quantity" ~class_name:"stock" ()) o1 in
  let e6 = record (Event_type.modify ~attribute:"quantity" ~class_name:"stock" ()) o2 in
  let e7 = record (Event_type.delete ~class_name:"stock") o1 in
  (eb, [ e1; e2; e3; e4; e5; e6; e7 ])

let test_fig3_fig4 () =
  let eb, occs = fig3_event_base () in
  Alcotest.(check int) "seven rows" 7 (Event_base.size eb);
  let e1 = List.nth occs 0 and e5 = List.nth occs 4 and e7 = List.nth occs 6 in
  Alcotest.(check string) "type(e1)" "create(stock)"
    (Event_type.to_string (Occurrence.type_ e1));
  Alcotest.(check int) "obj(e5) = o1" 1 (Ident.Oid.to_int (Occurrence.obj e5));
  Alcotest.(check string) "event_on_class(e7)" "stock"
    (Occurrence.event_on_class e7);
  Alcotest.(check bool) "timestamps increase" true
    (Time.( < ) (Occurrence.timestamp e1) (Occurrence.timestamp e7))

let test_last_of_type () =
  let eb, occs = fig3_event_base () in
  let modify = Event_type.modify ~attribute:"quantity" ~class_name:"stock" () in
  let at = Event_base.probe_now eb in
  let window = Window.all ~upto:at in
  let e6 = List.nth occs 5 in
  Alcotest.(check (option int)) "last modify is e6"
    (Some (Time.to_int (Occurrence.timestamp e6)))
    (Option.map Time.to_int (Event_base.last_of_type eb ~etype:modify ~window ~at));
  (* Clipping at an earlier instant sees only e5. *)
  let e5 = List.nth occs 4 in
  Alcotest.(check (option int)) "clipped at e5"
    (Some (Time.to_int (Occurrence.timestamp e5)))
    (Option.map Time.to_int
       (Event_base.last_of_type eb ~etype:modify ~window
          ~at:(Occurrence.timestamp e5)));
  (* The unqualified modify subscription sees the qualified occurrences. *)
  let unqualified = Event_type.modify ~class_name:"stock" () in
  Alcotest.(check bool) "unqualified modify indexed" true
    (Event_base.last_of_type eb ~etype:unqualified ~window ~at <> None)

let test_per_object_index () =
  let eb, occs = fig3_event_base () in
  let modify = Event_type.modify ~attribute:"quantity" ~class_name:"stock" () in
  let at = Event_base.probe_now eb in
  let window = Window.all ~upto:at in
  let o1 = Ident.Oid.of_int 1 and o3 = Ident.Oid.of_int 3 in
  let e5 = List.nth occs 4 in
  Alcotest.(check (option int)) "o1's last modify is e5"
    (Some (Time.to_int (Occurrence.timestamp e5)))
    (Option.map Time.to_int
       (Event_base.last_of_type_on eb ~etype:modify ~oid:o1 ~window ~at));
  Alcotest.(check (option int)) "o3 has no modify" None
    (Option.map Time.to_int
       (Event_base.last_of_type_on eb ~etype:modify ~oid:o3 ~window ~at))

let test_windows () =
  let eb, occs = fig3_event_base () in
  let e3 = List.nth occs 2 in
  let mid = Time.probe_after (Occurrence.timestamp e3) in
  let tail = Window.make ~after:mid ~upto:(Event_base.probe_now eb) in
  Alcotest.(check int) "four occurrences after e3" 4
    (List.length (Event_base.occurrences_in eb ~window:tail));
  Alcotest.(check bool) "nonempty" false (Event_base.is_empty_in eb ~window:tail);
  let empty = Window.make ~after:mid ~upto:mid in
  Alcotest.(check bool) "empty window" true
    (Event_base.is_empty_in eb ~window:empty)

let test_oids_in () =
  let eb, occs = fig3_event_base () in
  let at = Event_base.probe_now eb in
  let window = Window.all ~upto:at in
  Alcotest.(check (list int)) "all four objects" [ 1; 2; 3; 4 ]
    (List.map Ident.Oid.to_int (Event_base.oids_in eb ~window ~at));
  (* Clipping at e2 sees only o1 and o2. *)
  let e2 = List.nth occs 1 in
  Alcotest.(check (list int)) "first two objects" [ 1; 2 ]
    (List.map Ident.Oid.to_int
       (Event_base.oids_in eb ~window ~at:(Occurrence.timestamp e2)))

let test_oids_of_type () =
  let eb, _ = fig3_event_base () in
  let at = Event_base.probe_now eb in
  let window = Window.all ~upto:at in
  let create_stock = Event_type.create ~class_name:"stock" in
  Alcotest.(check (list int)) "stock creations affect o1 o2" [ 1; 2 ]
    (List.map Ident.Oid.to_int
       (Event_base.oids_of_type eb ~etype:create_stock ~window ~at))

let test_record_at_validation () =
  let eb = Event_base.create () in
  let o1 = Ident.Oid.of_int 1 in
  let etype = Event_type.create ~class_name:"stock" in
  ignore (Event_base.record_at eb ~etype ~oid:o1 ~timestamp:(Time.of_int 10));
  (match Event_base.record_at eb ~etype ~oid:o1 ~timestamp:(Time.of_int 10) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected monotonicity violation");
  match Event_base.record_at eb ~etype ~oid:o1 ~timestamp:(Time.of_int 13) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected event-instant (even) violation"

let suite =
  [
    Alcotest.test_case "event type to/of string" `Quick test_event_type_roundtrip;
    Alcotest.test_case "event type parse errors" `Quick test_event_type_errors;
    Alcotest.test_case "modify generalization" `Quick test_modify_generalization;
    Alcotest.test_case "Fig. 3 event base / Fig. 4 attributes" `Quick
      test_fig3_fig4;
    Alcotest.test_case "last_of_type with clipping" `Quick test_last_of_type;
    Alcotest.test_case "per-object index" `Quick test_per_object_index;
    Alcotest.test_case "windows" `Quick test_windows;
    Alcotest.test_case "oids_in" `Quick test_oids_in;
    Alcotest.test_case "oids_of_type" `Quick test_oids_of_type;
    Alcotest.test_case "record_at validation" `Quick test_record_at_validation;
  ]

let test_event_stats () =
  let eb, _ = fig3_event_base () in
  let stats = Event_stats.of_event_base eb in
  Alcotest.(check int) "total" 7 stats.Event_stats.total;
  Alcotest.(check int) "distinct types in the log" 5
    stats.Event_stats.distinct_types;
  Alcotest.(check int) "objects" 4 stats.Event_stats.distinct_objects;
  (match Event_stats.top_objects ~n:1 stats with
  | [ (oid, 3) ] -> Alcotest.(check int) "o1 busiest" 1 (Ident.Oid.to_int oid)
  | _ -> Alcotest.fail "expected o1 with 3 occurrences");
  (* Windowed collection sees a subset. *)
  let late =
    Event_stats.collect eb
      ~window:(Window.make ~after:(Time.of_int 9) ~upto:(Time.of_int 15))
  in
  Alcotest.(check int) "three in the tail window" 3 late.Event_stats.total

let suite = suite @ [ Alcotest.test_case "event stats" `Quick test_event_stats ]
