test/suite_engine2.ml: Action Alcotest Condition Core Engine Expr Expr_parse Ident List Object_store Operation Query Rule Rule_table Schema String Value
