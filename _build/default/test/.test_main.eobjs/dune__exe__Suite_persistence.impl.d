test/suite_persistence.ml: Alcotest Astring_contains Core Domain Engine Event_base Event_codec Filename Fun Gen List Object_store Printf Prng QCheck Scenario Sys Time Ts Value Window
