test/suite_event.ml: Alcotest Core Event_base Event_stats Event_type Ident List Occurrence Option Time Window
