test/suite_expr.ml: Alcotest Astring_contains Core Event_type Expr Expr_parse Gen List QCheck
