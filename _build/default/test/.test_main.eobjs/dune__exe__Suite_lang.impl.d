test/suite_lang.ml: Alcotest Astring_contains Core Engine Interp
