test/suite_prose.ml: Alcotest Core Domain Event_base Expr_parse Ident List Scenario Ts Window
