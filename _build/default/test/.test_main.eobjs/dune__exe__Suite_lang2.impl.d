test/suite_lang2.ml: Alcotest Array Condition Core Engine Event_base Filename Fun Interp List Object_store Option Query Schema String Sys Ts Value Window
