test/gen.ml: Array Core Domain Event_base Event_type Expr Ident List Printf QCheck QCheck_alcotest String Time Ts Window
