test/suite_ts.ml: Alcotest Core Domain Event_base Expr Expr_parse Ident List Occurrence Scenario Time Ts Window
