test/suite_baseline.ml: Alcotest Array Automaton Core Event_base Expr Gen Ident Inst_tree_detector List Naive Occurrence Printf QCheck String Time Tree_detector Ts Window
