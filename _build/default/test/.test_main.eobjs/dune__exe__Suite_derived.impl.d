test/suite_derived.ml: Alcotest Array Context_detector Core Derived Domain Event_base Expr Gen Ident List Occurrence Time Ts Window
