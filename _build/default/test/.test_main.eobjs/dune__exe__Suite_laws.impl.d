test/suite_laws.ml: Array Core Event_base Expr Gen Ident List Normal_form Printf QCheck Time Ts Window
