test/suite_util.ml: Alcotest Astring_contains Core List Pretty Prng Time Vec
