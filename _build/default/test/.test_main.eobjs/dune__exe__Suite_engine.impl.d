test/suite_engine.ml: Action Alcotest Condition Core Engine Expr_parse List Object_store Operation Query Rule Schema Trigger_support Value
