test/suite_store.ml: Alcotest Core Event_type List Object_store Operation Query Schema Value
