test/suite_store_model.ml: Array Core Gen Ident List Object_store Option Printf QCheck Schema Value
