test/suite_formulas.ml: Alcotest Core Domain Event_base Expr_parse Ident List Occurrence Time Ts Window
