test/suite_optimizer.ml: Alcotest Array Core Derive Event_base Event_type Expr Expr_parse Fmt Gen List Printf QCheck Relevance Simplify String Time Ts Variation Window
