test/suite_workload.ml: Alcotest Core Domain Engine Event_type Expr Expr_gen Gen Ident List Object_store Operation Prng QCheck Scenario Value
