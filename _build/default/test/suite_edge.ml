(* Edge cases and robustness: parser fuzzing, boundary windows, deep
   expressions, failure injection in the engine, and rule-table
   lifecycle. *)

open Core

(* ------------------------------------------------------------- fuzz *)

(* The expression parser must never raise on arbitrary input: every
   outcome is Ok or Error. *)
let parser_total =
  Gen.qcheck ~count:1000 "expression parser is total"
    (QCheck.make ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 40)))
    (fun s ->
      match Expr_parse.parse s with Ok _ | Error _ -> true)

let script_parser_total =
  Gen.qcheck ~count:1000 "script parser is total"
    (QCheck.make ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 60)))
    (fun s ->
      match Lang_parser.parse s with Ok _ | Error _ -> true)

let event_type_parser_total =
  Gen.qcheck ~count:1000 "event-type parser is total"
    (QCheck.make ~print:(Printf.sprintf "%S")
       QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 30)))
    (fun s ->
      match Event_type.of_string s with Ok _ | Error _ -> true)

(* Mutated valid expressions: drop/duplicate one character and reparse. *)
let parser_survives_mutation =
  Gen.qcheck ~count:500 "parser survives single-character mutations"
    (QCheck.make
       ~print:(fun (e, i) -> Printf.sprintf "%s / %d" (Expr.to_string e) i)
       QCheck.Gen.(pair (Gen.gen_set_expr Gen.Full) (int_range 0 200)))
    (fun (e, i) ->
      let s = Expr.to_string e in
      if String.length s = 0 then true
      else begin
        let pos = i mod String.length s in
        let dropped =
          String.sub s 0 pos ^ String.sub s (pos + 1) (String.length s - pos - 1)
        in
        let doubled =
          String.sub s 0 pos
          ^ String.make 1 s.[pos]
          ^ String.sub s pos (String.length s - pos)
        in
        (match Expr_parse.parse dropped with Ok _ | Error _ -> true)
        && (match Expr_parse.parse doubled with Ok _ | Error _ -> true)
      end)

(* -------------------------------------------------------- boundaries *)

let test_window_boundaries () =
  let w = Window.make ~after:(Time.of_int 3) ~upto:(Time.of_int 9) in
  Alcotest.(check bool) "after excluded" false (Window.contains w (Time.of_int 3));
  Alcotest.(check bool) "upto included" true (Window.contains w (Time.of_int 9));
  Alcotest.(check bool) "inside" true (Window.contains w (Time.of_int 4));
  (match Window.make ~after:(Time.of_int 9) ~upto:(Time.of_int 3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid window");
  (* Degenerate window is allowed and empty. *)
  let empty = Window.make ~after:(Time.of_int 5) ~upto:(Time.of_int 5) in
  Alcotest.(check bool) "degenerate empty" false
    (Window.contains empty (Time.of_int 5))

let test_ts_at_window_lower_bound () =
  let eb = Gen.build_event_base [ (0, 0); (1, 0) ] in
  let at = Event_base.probe_now eb in
  let window = Window.make ~after:at ~upto:at in
  let env = Ts.env eb ~window in
  (* Empty R: primitives inactive, negation active (stamped now). *)
  Alcotest.(check bool) "primitive inactive" false
    (Ts.active env ~at (Expr.prim Gen.alphabet.(0)));
  Alcotest.(check bool) "negation active" true
    (Ts.active env ~at (Expr.not_ (Expr.prim Gen.alphabet.(0))))

let test_unknown_event_types () =
  let eb = Gen.build_event_base [ (0, 0) ] in
  let ghost = Event_type.external_ ~name:"never" ~class_name:"ghost" in
  let at = Event_base.probe_now eb in
  let env = Ts.env eb ~window:(Window.all ~upto:at) in
  Alcotest.(check bool) "never-seen type inactive" false
    (Ts.active env ~at (Expr.prim ghost));
  Alcotest.(check int) "value is -t" (-Time.to_int at)
    (Ts.ts env ~at (Expr.prim ghost))

let test_deep_expression () =
  (* A 200-deep left portion exercises stack behaviour and printing. *)
  let p = Expr.prim Gen.alphabet.(0) in
  let deep = ref p in
  for _ = 1 to 200 do
    deep := Expr.conj !deep (Expr.not_ p)
  done;
  let eb = Gen.build_event_base [ (0, 0) ] in
  let at = Event_base.probe_now eb in
  let env = Ts.env eb ~window:(Window.all ~upto:at) in
  (* A + -A is never active; the conjunction chain stays inactive. *)
  Alcotest.(check bool) "deep chain evaluates" false (Ts.active env ~at !deep);
  (* Printing and reparsing stays faithful. *)
  match Expr_parse.parse (Expr.to_string !deep) with
  | Ok e -> Alcotest.(check bool) "roundtrip" true (Expr.equal e !deep)
  | Error msg -> Alcotest.fail msg

(* --------------------------------------------------- failure injection *)

let test_engine_survives_errors () =
  let engine = Engine.create (Domain.schema ()) in
  let _ = Engine.define_exn engine Scenario.check_stock_qty in
  (* Unknown attribute mid-block: the line fails... *)
  (match
     Engine.execute_line engine
       [
         Domain.new_stock ~quantity:5 ~maxquantity:10 ~minquantity:0;
         Operation.Create
           { class_name = "stock"; attrs = [ ("nope", Value.Int 1) ] };
       ]
   with
  | Error (`Unknown_attribute _) -> ()
  | Ok () -> Alcotest.fail "expected unknown attribute"
  | Error e -> Alcotest.failf "unexpected: %a" Engine.pp_error e);
  (* ...and the engine remains usable afterwards. *)
  (match
     Engine.execute_line engine
       [ Domain.new_stock ~quantity:50 ~maxquantity:10 ~minquantity:0 ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "engine wedged: %a" Engine.pp_error e);
  (* The clamp rule still works on the new object. *)
  let store = Engine.store engine in
  let violator =
    List.find
      (fun oid ->
        match Object_store.get store oid ~attribute:"maxquantity" with
        | Ok (Value.Int 10) -> true
        | _ -> false)
      (List.rev (Object_store.extent store ~class_name:"stock"))
  in
  match Object_store.get store violator ~attribute:"quantity" with
  | Ok (Value.Int q) -> Alcotest.(check bool) "clamped" true (q <= 10)
  | _ -> Alcotest.fail "quantity"

let test_unknown_class_operations () =
  let engine = Engine.create (Domain.schema ()) in
  (match
     Engine.execute_line engine
       [ Operation.Create { class_name = "ghost"; attrs = [] } ]
   with
  | Error (`Unknown_class _) -> ()
  | _ -> Alcotest.fail "expected unknown class");
  match
    Engine.execute_line engine
      [ Operation.Delete { oid = Ident.Oid.of_int 999 } ]
  with
  | Error (`Unknown_object _) -> ()
  | _ -> Alcotest.fail "expected unknown object"

(* ------------------------------------------------- rule-table lifecycle *)

let test_rule_table_lifecycle () =
  let table = Rule_table.create () in
  let tx_start = Time.of_int 1 in
  let spec name priority =
    {
      Rule.name;
      target = None;
      event = Expr.prim Gen.alphabet.(0);
      condition = [];
      action = [];
      coupling = Rule.Immediate;
      consumption = Rule.Consuming;
      priority;
    }
  in
  let ok = function
    | Ok r -> r
    | Error (`Rule_error msg) -> Alcotest.fail msg
  in
  let _a = ok (Rule_table.add table ~tx_start (spec "a" 1)) in
  let b = ok (Rule_table.add table ~tx_start (spec "b" 9)) in
  (match Rule_table.add table ~tx_start (spec "a" 5) with
  | Error (`Rule_error _) -> ()
  | Ok _ -> Alcotest.fail "expected duplicate rejection");
  Alcotest.(check int) "two rules" 2 (Rule_table.cardinal table);
  Alcotest.(check (list string)) "priority order" [ "b"; "a" ]
    (List.map Rule.name (Rule_table.rules table));
  b.Rule.triggered <- true;
  (match Rule_table.select table ~filter:(fun _ -> true) with
  | Some r -> Alcotest.(check string) "selects b" "b" (Rule.name r)
  | None -> Alcotest.fail "expected selection");
  (match Rule_table.remove table "b" with
  | Ok () -> ()
  | Error (`Rule_error msg) -> Alcotest.fail msg);
  Alcotest.(check int) "one rule left" 1 (Rule_table.cardinal table);
  match Rule_table.remove table "b" with
  | Error (`Rule_error _) -> ()
  | Ok () -> Alcotest.fail "expected missing-rule error"

(* at() through the script language, with the bound instant used in a
   comparison. *)
let test_at_formula_in_language () =
  let interp = Interp.create () in
  (match
     Interp.run_string interp
       {|
define class stock (quantity: integer, maxquantity: integer, minquantity: integer);
define class audit (when_at: integer);
define immediate trigger auditModify
  events { modify(stock.quantity) }
  condition at({ create(stock) <= modify(stock.quantity) }, S, T), T > 0
  actions create audit(when_at = T)
end;
create stock(quantity = 5, maxquantity = 10, minquantity = 0) as X;
modify X.quantity = 7;
modify X.quantity = 9;
|}
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let store = Engine.store (Interp.engine interp) in
  (* Exactly one audit row: the first consideration binds the update
     instant; after it the creation is consumed, so the second update no
     longer completes the create-then-modify pattern (consuming mode). *)
  let audits = Object_store.extent store ~class_name:"audit" in
  Alcotest.(check int) "one audit row" 1 (List.length audits);
  List.iter
    (fun oid ->
      match Object_store.get store oid ~attribute:"when_at" with
      | Ok (Value.Int t) ->
          Alcotest.(check bool) "instant positive" true (t > 0)
      | _ -> Alcotest.fail "when_at")
    audits

let suite =
  [
    parser_total;
    script_parser_total;
    event_type_parser_total;
    parser_survives_mutation;
    Alcotest.test_case "window boundaries" `Quick test_window_boundaries;
    Alcotest.test_case "ts on an empty window" `Quick
      test_ts_at_window_lower_bound;
    Alcotest.test_case "unknown event types" `Quick test_unknown_event_types;
    Alcotest.test_case "deep expressions" `Quick test_deep_expression;
    Alcotest.test_case "engine survives op errors" `Quick
      test_engine_survives_errors;
    Alcotest.test_case "unknown class/object operations" `Quick
      test_unknown_class_operations;
    Alcotest.test_case "rule table lifecycle" `Quick test_rule_table_lifecycle;
    Alcotest.test_case "at() through the language" `Quick
      test_at_formula_in_language;
  ]
