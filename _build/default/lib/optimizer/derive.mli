(** The derivation rules of Fig. 6: propagate the required variation
    [D+(E)] down to variations on primitive event types, recording every
    intermediate step so the paper's worked example can be printed. *)


open Chimera_calculus
type pending =
  | On_set of Variation.polarity * Expr.set
  | On_inst of Variation.polarity * Expr.inst

type trace = {
  expression : Expr.set;
  steps : pending list list;  (** intermediate worklists, first to last *)
  variations : Variation.t list;  (** fully derived, before simplification *)
}

val derive : Expr.set -> trace

val variations : Expr.set -> Variation.t list
(** The final step of {!derive} as variations on primitives. *)

val pp_pending : Format.formatter -> pending -> unit
val pp_step : Format.formatter -> pending list -> unit
val pp_trace : Format.formatter -> trace -> unit
