lib/optimizer/derive.ml: Chimera_calculus Expr Fmt List Variation
