lib/optimizer/derive.mli: Chimera_calculus Expr Format Variation
