lib/optimizer/relevance.ml: Chimera_calculus Chimera_event Event_type Expr List Simplify Variation
