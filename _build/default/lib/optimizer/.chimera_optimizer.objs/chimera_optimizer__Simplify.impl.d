lib/optimizer/simplify.ml: Chimera_event Derive Event_type Fmt List Variation
