lib/optimizer/relevance.mli: Chimera_calculus Chimera_event Event_type Expr Format Simplify
