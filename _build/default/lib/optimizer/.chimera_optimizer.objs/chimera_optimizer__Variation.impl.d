lib/optimizer/variation.ml: Chimera_event Event_type Fmt Stdlib
