lib/optimizer/simplify.mli: Chimera_calculus Chimera_event Event_type Expr Format Variation
