lib/optimizer/variation.mli: Chimera_event Event_type Format
