(* The simplification rules of Fig. 7.

   Derived variations on the same primitive event type collapse:

     - an object-scoped variation merges into a set-scoped one of the same
       polarity (a new occurrence of the type is a variation at both
       granularities), so scope is dropped;
     - a positive and a negative variation on the same type merge into the
       two-sided variation D(E).

   The result V(E) maps each primitive event type to the polarity of
   variation that forces a ts recomputation. *)

open Chimera_event

type v_set = Variation.polarity Event_type.Map.t

let of_variations vars =
  List.fold_left
    (fun acc v ->
      let etype = Variation.etype v and pol = Variation.polarity v in
      Event_type.Map.update etype
        (function
          | None -> Some pol
          | Some existing -> Some (Variation.merge_polarity existing pol))
        acc)
    Event_type.Map.empty vars

let v_of_expr e = of_variations (Derive.variations e)

let bindings = Event_type.Map.bindings

let mem = Event_type.Map.mem

let polarity_of v etype = Event_type.Map.find_opt etype v

let has_negative v =
  Event_type.Map.exists
    (fun _ pol -> match pol with
      | Variation.Negative | Variation.Both -> true
      | Variation.Positive -> false)
    v

let cardinal = Event_type.Map.cardinal

let pp ppf v =
  let pp_binding ppf (etype, pol) =
    Fmt.pf ppf "D%s(%a)" (Variation.polarity_symbol pol) Event_type.pp etype
  in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_binding) (bindings v)

let to_string v = Fmt.str "%a" pp v
