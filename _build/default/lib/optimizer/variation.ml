(* Variations of the ts function (Section 5.1).

   The occurrence of a composite event is signalled by a positive variation
   of its ts; static analysis propagates required variations through the
   expression down to primitive event types (Fig. 6) and simplifies the
   resulting set (Fig. 7) into V(E): the event types whose arrival can
   change the sign of ts and hence require recomputation. *)

open Chimera_event

type polarity = Positive | Negative | Both

type scope = Set_scope | Object_scope

(* A fully derived variation on a primitive event type. *)
type t = { etype : Event_type.t; polarity : polarity; scope : scope }

let make ~etype ~polarity ~scope = { etype; polarity; scope }
let etype t = t.etype
let polarity t = t.polarity
let scope t = t.scope

let polarity_symbol = function Positive -> "+" | Negative -> "-" | Both -> ""

let merge_polarity a b =
  match (a, b) with
  | Positive, Positive -> Positive
  | Negative, Negative -> Negative
  | _ -> Both

let negate_polarity = function
  | Positive -> Negative
  | Negative -> Positive
  | Both -> Both

let includes ~required ~observed =
  match (required, observed) with
  | Both, _ -> true
  | Positive, Positive -> true
  | Negative, Negative -> true
  | _ -> false

let pp ppf t =
  let scope_mark = match t.scope with Set_scope -> "" | Object_scope -> "^O" in
  Fmt.pf ppf "D%s%s(%a)" (polarity_symbol t.polarity) scope_mark Event_type.pp
    t.etype

let to_string t = Fmt.str "%a" pp t

let compare a b =
  let c = Event_type.compare a.etype b.etype in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.polarity b.polarity in
    if c <> 0 then c else Stdlib.compare a.scope b.scope

let equal a b = compare a b = 0
