(** The simplification rules of Fig. 7: collapse derived variations into
    V(E), a map from primitive event type to required variation polarity. *)

open Chimera_event
open Chimera_calculus

type v_set = Variation.polarity Event_type.Map.t

val of_variations : Variation.t list -> v_set
(** Merges scopes (object-scoped collapses into set-scoped) and polarities
    (positive + negative = both). *)

val v_of_expr : Expr.set -> v_set
(** [of_variations (Derive.variations e)]. *)

val bindings : v_set -> (Event_type.t * Variation.polarity) list
val mem : Event_type.t -> v_set -> bool
val polarity_of : v_set -> Event_type.t -> Variation.polarity option
val has_negative : v_set -> bool
val cardinal : v_set -> int
val pp : Format.formatter -> v_set -> unit
val to_string : v_set -> string
