(* The derivation rules of Fig. 6.

   Starting from the requirement D+(E) ("ts of the whole expression gains a
   positive variation"), each rule rewrites a variation on a composite into
   variations on its components:

     D+(-E)  <= D-(E)             D-(-E)  <= D+(E)
     D+(A<B) <= D+(B)             D-(A<B) <= D-(B)
     D+(A op B) <= D+(A), D+(B)   D-(A op B) <= D-(A), D-(B)   (op = +, ,)

   with the object-scoped analogues for instance-oriented operators, and the
   lifting boundary mapping a set-level variation of an embedded instance
   expression to object-scoped variations of its body (negative polarity for
   the min-lifted instance negation).  Precedence propagates only through
   its second operand: a fresh occurrence of the first operand carries a
   timestamp later than the second operand's activation instant and so can
   never newly satisfy the precedence. *)

open Chimera_calculus

(* A variation requirement still referring to a subexpression. *)
type pending =
  | On_set of Variation.polarity * Expr.set
  | On_inst of Variation.polarity * Expr.inst

let pp_pending ppf = function
  | On_set (pol, Expr.Prim p) | On_inst (pol, Expr.I_prim p) ->
      Variation.pp ppf
        (Variation.make ~etype:p ~polarity:pol ~scope:Variation.Set_scope)
  | On_set (pol, e) ->
      Fmt.pf ppf "D%s(%a)" (Variation.polarity_symbol pol) Expr.pp e
  | On_inst (pol, e) ->
      Fmt.pf ppf "D%s^O(%a)" (Variation.polarity_symbol pol) Expr.pp_inst e

let is_primitive = function
  | On_set (_, Expr.Prim _) -> true
  | On_inst (_, Expr.I_prim _) -> true
  | _ -> false

(* One application of a Fig. 6 rule; primitives are left untouched. *)
let expand = function
  | On_set (_, Expr.Prim _) as p -> [ p ]
  | On_set (pol, Expr.Not e) -> [ On_set (Variation.negate_polarity pol, e) ]
  | On_set (pol, Expr.And (a, b)) | On_set (pol, Expr.Or (a, b)) ->
      [ On_set (pol, a); On_set (pol, b) ]
  | On_set (pol, Expr.Seq (a, b)) ->
      (* Fig. 6 propagates only through the second operand, which is sound
         when its activation instant is a past event instant.  A negation
         inside the second operand can stamp it with the *current* instant,
         un-freezing the first operand's evaluation point, so we then
         conservatively propagate through both. *)
      if Expr.has_negation b then [ On_set (pol, a); On_set (pol, b) ]
      else [ On_set (pol, b) ]
  | On_set (pol, Expr.Inst (Expr.I_not e)) ->
      (* min-lifted: the set-level expression gains a positive variation
         when every object loses the negated body. *)
      [ On_inst (Variation.negate_polarity pol, e) ]
  | On_set (pol, Expr.Inst ie) -> [ On_inst (pol, ie) ]
  | On_inst (_, Expr.I_prim _) as p -> [ p ]
  | On_inst (pol, Expr.I_not e) -> [ On_inst (Variation.negate_polarity pol, e) ]
  | On_inst (pol, Expr.I_and (a, b)) | On_inst (pol, Expr.I_or (a, b)) ->
      [ On_inst (pol, a); On_inst (pol, b) ]
  | On_inst (pol, Expr.I_seq (a, b)) ->
      if Expr.inst_has_negation b then [ On_inst (pol, a); On_inst (pol, b) ]
      else [ On_inst (pol, b) ]

let to_variation = function
  | On_set (polarity, Expr.Prim etype) ->
      Variation.make ~etype ~polarity ~scope:Variation.Set_scope
  | On_inst (polarity, Expr.I_prim etype) ->
      Variation.make ~etype ~polarity ~scope:Variation.Object_scope
  | _ -> invalid_arg "Derive.to_variation: not primitive"

type trace = {
  expression : Expr.set;
  steps : pending list list;  (** intermediate worklists, first to last *)
  variations : Variation.t list;  (** fully derived, before simplification *)
}

let dedup_pending ps =
  let rec loop seen = function
    | [] -> List.rev seen
    | p :: rest ->
        if List.exists (fun q -> q = p) seen then loop seen rest
        else loop (p :: seen) rest
  in
  loop [] ps

(* Breadth-first expansion, recording each intermediate worklist so the
   Fig. 6 worked example can be printed step by step. *)
let derive expression =
  let rec loop acc current =
    if List.for_all is_primitive current then (List.rev acc, current)
    else
      let next = dedup_pending (List.concat_map expand current) in
      loop (current :: acc) next
  in
  let steps_rev, final = loop [] [ On_set (Variation.Positive, expression) ] in
  {
    expression;
    steps = steps_rev @ [ final ];
    variations = List.map to_variation final;
  }

let variations expression = (derive expression).variations

let pp_step ppf step = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_pending) step

let pp_trace ppf t =
  Fmt.pf ppf "@[<v>V(E) for E = %a@," Expr.pp t.expression;
  List.iter (fun step -> Fmt.pf ppf "= %a@," pp_step step) t.steps;
  Fmt.pf ppf "@]"
