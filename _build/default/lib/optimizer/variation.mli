(** Variations of the ts function (Section 5.1): the vocabulary of the
    static optimizer. *)

open Chimera_event

type polarity =
  | Positive  (** D+: ts may become positive. *)
  | Negative  (** D-: ts may become negative. *)
  | Both  (** D: either direction. *)

type scope =
  | Set_scope  (** variation of ts *)
  | Object_scope  (** variation of ots for a single object *)

type t

val make : etype:Event_type.t -> polarity:polarity -> scope:scope -> t
val etype : t -> Event_type.t
val polarity : t -> polarity
val scope : t -> scope
val polarity_symbol : polarity -> string
val merge_polarity : polarity -> polarity -> polarity
val negate_polarity : polarity -> polarity

val includes : required:polarity -> observed:polarity -> bool
(** Whether an observed variation satisfies a required one. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
