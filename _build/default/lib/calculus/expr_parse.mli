(** Parser for the concrete event-expression syntax of Fig. 1
    (negation [-]/[-=], conjunction [+]/[+=], precedence [<]/[<=],
    disjunction [,]/[,=], event types like [modify(stock.quantity)]). *)

val parse : string -> (Expr.set, string) result
(** Parses a set-oriented expression (the general case); instance-oriented
    subexpressions are recognized by their [=]-suffixed operators.
    Applying an instance operator to a set subexpression is reported as an
    error with a position. *)

val parse_inst : string -> (Expr.inst, string) result
(** Like {!parse} but requires the result to be instance-oriented, as the
    [occurred]/[at] event formulas do (Section 3.3). *)

val parse_exn : string -> Expr.set
(** Raises [Invalid_argument] on error. *)

val parse_inst_exn : string -> Expr.inst
