lib/calculus/expr.mli: Chimera_event Event_type Format
