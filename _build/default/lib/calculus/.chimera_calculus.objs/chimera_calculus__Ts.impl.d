lib/calculus/ts.ml: Chimera_event Chimera_util Event_base Event_type Expr List Time Window
