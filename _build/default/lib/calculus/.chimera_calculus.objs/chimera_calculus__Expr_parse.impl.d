lib/calculus/expr_parse.ml: Chimera_event Event_type Expr List Printf String
