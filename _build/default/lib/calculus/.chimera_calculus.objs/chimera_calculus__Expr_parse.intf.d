lib/calculus/expr_parse.mli: Expr
