lib/calculus/memo.mli: Chimera_event Chimera_util Event_base Expr Ident Time
