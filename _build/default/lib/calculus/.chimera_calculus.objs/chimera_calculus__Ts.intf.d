lib/calculus/ts.mli: Chimera_event Chimera_util Event_base Expr Ident Time Window
