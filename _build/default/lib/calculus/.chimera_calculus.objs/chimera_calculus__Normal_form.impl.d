lib/calculus/normal_form.ml: Expr
