lib/calculus/derived.ml: Expr List
