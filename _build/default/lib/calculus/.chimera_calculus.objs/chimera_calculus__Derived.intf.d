lib/calculus/derived.mli: Chimera_event Event_type Expr
