lib/calculus/expr.ml: Chimera_event Event_type Fmt Stdlib
