lib/calculus/normal_form.mli: Expr
