lib/calculus/memo.ml: Chimera_event Chimera_util Event_base Event_type Expr Hashtbl Ident List Time Vec Window
