(** Memoized ts evaluation over interned (hash-consed) expressions.

    Because the event base is append-only, ts(E, at) over a window with a
    fixed lower bound is immutable once computed: (node, instant) pairs
    are cached across probes and shared across structurally equal
    subexpressions of a whole rule set.  Intern once, evaluate through the
    handle.  Ablation substrate for bench E7. *)

open Chimera_util
open Chimera_event

type t

type handle
(** An interned expression; evaluation through a handle never re-hashes
    the tree. *)

val create : Event_base.t -> after:Time.t -> t
(** A memo table bound to one window lower bound. *)

val intern : t -> Expr.set -> handle
val intern_inst : t -> Expr.inst -> handle

val ts_handle : t -> at:Time.t -> handle -> int
val active_handle : t -> at:Time.t -> handle -> bool

val ts : t -> at:Time.t -> Expr.set -> int
(** Interns (cached) then evaluates; same value as {!Ts.ts} under the
    logical style (property-tested). *)

val ots : t -> at:Time.t -> Expr.inst -> Ident.Oid.t -> int
val active : t -> at:Time.t -> Expr.set -> bool

val restart : t -> after:Time.t -> unit
(** Moves the window's lower bound (a consuming consideration), dropping
    every cached value; interned nodes are kept. *)

val hits : t -> int
val misses : t -> int

val event_base : t -> Event_base.t
(** The log this memo is bound to (cached values are per event base). *)

val node_count : t -> int
(** Distinct interned nodes (shows cross-rule sharing). *)
