(** Event expressions (Section 3 of the paper).

    The stratification of the two ADTs enforces the paper's composition
    rule: instance-oriented operators never apply to set-oriented
    subexpressions, while instance-oriented expressions may appear as
    operands of set-oriented operators. *)

open Chimera_event

(** Instance-oriented expressions ([-=], [+=], [,=], [<=]). *)
type inst =
  | I_prim of Event_type.t
  | I_not of inst
  | I_and of inst * inst
  | I_or of inst * inst
  | I_seq of inst * inst

(** Set-oriented expressions ([-], [+], [,], [<]), possibly embedding
    instance-oriented subexpressions. *)
type set =
  | Prim of Event_type.t
  | Not of set
  | And of set * set
  | Or of set * set
  | Seq of set * set
  | Inst of inst

(** {1 Construction} *)

val prim : Event_type.t -> set
val not_ : set -> set
val conj : set -> set -> set
val disj : set -> set -> set
val seq : set -> set -> set

val inst : inst -> set
(** Injects an instance expression at the set level; collapses
    [Inst (I_prim p)] to [Prim p]. *)

val i_prim : Event_type.t -> inst
val i_not : inst -> inst
val i_conj : inst -> inst -> inst
val i_disj : inst -> inst -> inst
val i_seq : inst -> inst -> inst

val conj_list : set list -> set
(** Right-nested conjunction; raises [Invalid_argument] on []. *)

val disj_list : set list -> set

(** {1 Comparison and measures} *)

val compare : set -> set -> int
val equal : set -> set -> bool
val compare_inst : inst -> inst -> int
val equal_inst : inst -> inst -> bool
val size : set -> int
val inst_size : inst -> int
val depth : set -> int
val inst_depth : inst -> int

val primitives : set -> Event_type.Set.t
val primitives_inst : inst -> Event_type.Set.t
val has_negation : set -> bool
val inst_has_negation : inst -> bool
val has_instance : set -> bool

val is_regular : set -> bool
(** Negation- and instance-free: the fragment Ode-style automata detect. *)

val map_primitives : (Event_type.t -> Event_type.t) -> set -> set
val map_primitives_inst : (Event_type.t -> Event_type.t) -> inst -> inst

(** {1 Operator metadata (Fig. 1 / Fig. 2)} *)

type operator = Negation | Conjunction | Precedence | Disjunction
type granularity = Set_oriented | Instance_oriented

val operator_symbol : operator -> granularity -> string

val operator_priority : operator -> int
(** Decreasing: negation 3 > conjunction = precedence 2 > disjunction 1. *)

val operator_dimension : operator -> string
(** ["boolean"] or ["temporal"] (the dimensions of Fig. 2). *)

val operator_table : (operator * string * string) list
(** Rows of Fig. 1 in the paper's order:
    (operator, instance symbol, set symbol). *)

val operator_name : operator -> string

(** {1 Printing} *)

val pp : Format.formatter -> set -> unit
(** Minimal-parentheses concrete syntax, re-parsable by {!Expr_parse}. *)

val pp_inst : Format.formatter -> inst -> unit
val to_string : set -> string
val inst_to_string : inst -> string
