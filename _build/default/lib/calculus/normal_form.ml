(* Negation normal form for event expressions.

   The De Morgan and double-negation laws hold for ts *values* (Section 4;
   machine-verified in the law suite), so negations can be pushed through
   conjunction and disjunction without changing any evaluation:

     -(A + B) = -A , -B        -(A , B) = -A + -B        --E = E

   Two constructs are barriers:

   - Precedence has no dual (there is no law rewriting -(A < B)).
   - The instance-to-set lifting inspects the OUTERMOST constructor of the
     lifted expression — an [I_not] root min-lifts (for-all-objects), any
     other root exists-lifts — so a rewrite that changes that root changes
     the set-level meaning even though every per-object ots is preserved.
     Consequently the boundary root is kept as-is; one useful dual does
     hold and is exploited: the set-level negation of an exists-lift is
     the min-lift of the per-object negation,

       -(Inst ie) = Inst (I_not ie)        when ie's root is not I_not,

     while the negation of a min-lift ("some object lacks ie") is not
     expressible as a lift at all, and keeps a residual outer negation.

   Result: negations appear only in front of primitives, precedences,
   min-lift boundaries, and (residually) min-lifted instance expressions.
   Value-preserving at every instant, by property test. *)

let rec nnf_inst = function
  | Expr.I_prim _ as e -> e
  | Expr.I_and (a, b) -> Expr.I_and (nnf_inst a, nnf_inst b)
  | Expr.I_or (a, b) -> Expr.I_or (nnf_inst a, nnf_inst b)
  | Expr.I_seq (a, b) -> Expr.I_seq (nnf_inst a, nnf_inst b)
  | Expr.I_not e -> negate_inst e

and negate_inst = function
  | Expr.I_not e -> nnf_inst e
  | Expr.I_and (a, b) -> Expr.I_or (negate_inst a, negate_inst b)
  | Expr.I_or (a, b) -> Expr.I_and (negate_inst a, negate_inst b)
  | Expr.I_prim _ as e -> Expr.I_not e
  | Expr.I_seq (a, b) -> Expr.I_not (Expr.I_seq (nnf_inst a, nnf_inst b))

(* Normalization under a lifting boundary: the outermost constructor is
   load-bearing and preserved; everything beneath it normalizes freely. *)
let nnf_boundary = function
  | Expr.I_not e -> Expr.I_not (nnf_inst e)
  | (Expr.I_prim _ | Expr.I_and _ | Expr.I_or _ | Expr.I_seq _) as ie ->
      nnf_inst ie

let rec nnf = function
  | Expr.Prim _ as e -> e
  | Expr.And (a, b) -> Expr.And (nnf a, nnf b)
  | Expr.Or (a, b) -> Expr.Or (nnf a, nnf b)
  | Expr.Seq (a, b) -> Expr.Seq (nnf a, nnf b)
  | Expr.Inst ie -> Expr.inst (nnf_boundary ie)
  | Expr.Not e -> negate e

and negate = function
  | Expr.Not e -> nnf e
  | Expr.And (a, b) -> Expr.Or (negate a, negate b)
  | Expr.Or (a, b) -> Expr.And (negate a, negate b)
  | Expr.Prim _ as e -> Expr.Not e
  | Expr.Seq (a, b) -> Expr.Not (Expr.Seq (nnf a, nnf b))
  | Expr.Inst (Expr.I_not _ as ie) ->
      (* "Some object lacks ie": not expressible as a lift; residual
         negation over the preserved min-lift. *)
      Expr.Not (Expr.Inst (nnf_boundary ie))
  | Expr.Inst ie -> Expr.Inst (Expr.I_not (nnf_inst ie))

(* Checkers: where may a negation still stand after [nnf]? *)
let rec inst_in_nnf = function
  | Expr.I_prim _ -> true
  | Expr.I_not (Expr.I_prim _) -> true
  | Expr.I_not (Expr.I_seq (a, b)) -> inst_in_nnf a && inst_in_nnf b
  | Expr.I_not _ -> false
  | Expr.I_and (a, b) | Expr.I_or (a, b) | Expr.I_seq (a, b) ->
      inst_in_nnf a && inst_in_nnf b

let boundary_in_nnf = function
  | Expr.I_not e -> inst_in_nnf e
  | (Expr.I_prim _ | Expr.I_and _ | Expr.I_or _ | Expr.I_seq _) as ie ->
      inst_in_nnf ie

let rec in_nnf = function
  | Expr.Prim _ -> true
  | Expr.Not (Expr.Prim _) -> true
  | Expr.Not (Expr.Seq (a, b)) -> in_nnf a && in_nnf b
  | Expr.Not (Expr.Inst (Expr.I_not e)) -> inst_in_nnf e
  | Expr.Not _ -> false
  | Expr.And (a, b) | Expr.Or (a, b) | Expr.Seq (a, b) -> in_nnf a && in_nnf b
  | Expr.Inst ie -> boundary_in_nnf ie
