(* Event expressions (Section 3).

   Instance-oriented operators cannot be applied to set-oriented
   subexpressions (Section 3.2), while an instance-oriented expression can
   appear as an operand of a set-oriented operator.  Two mutually stratified
   ADTs make the restriction unrepresentable. *)

open Chimera_event

type inst =
  | I_prim of Event_type.t
  | I_not of inst
  | I_and of inst * inst
  | I_or of inst * inst
  | I_seq of inst * inst

type set =
  | Prim of Event_type.t
  | Not of set
  | And of set * set
  | Or of set * set
  | Seq of set * set
  | Inst of inst

(* Smart constructors; [inst] injects an instance expression at the set
   level, collapsing the redundant [Inst (I_prim p)] to [Prim p] (the paper
   notes primitives behave identically at both granularities). *)

let prim p = Prim p
let not_ e = Not e
let conj a b = And (a, b)
let disj a b = Or (a, b)
let seq a b = Seq (a, b)
let inst = function I_prim p -> Prim p | ie -> Inst ie
let i_prim p = I_prim p
let i_not e = I_not e
let i_conj a b = I_and (a, b)
let i_disj a b = I_or (a, b)
let i_seq a b = I_seq (a, b)

let rec conj_list = function
  | [] -> invalid_arg "Expr.conj_list: empty"
  | [ e ] -> e
  | e :: rest -> And (e, conj_list rest)

let rec disj_list = function
  | [] -> invalid_arg "Expr.disj_list: empty"
  | [ e ] -> e
  | e :: rest -> Or (e, disj_list rest)

let compare_inst = (Stdlib.compare : inst -> inst -> int)
let equal_inst a b = compare_inst a b = 0
let compare = (Stdlib.compare : set -> set -> int)
let equal a b = compare a b = 0

(* Structural measures. *)

let rec inst_size = function
  | I_prim _ -> 1
  | I_not e -> 1 + inst_size e
  | I_and (a, b) | I_or (a, b) | I_seq (a, b) -> 1 + inst_size a + inst_size b

let rec size = function
  | Prim _ -> 1
  | Not e -> 1 + size e
  | And (a, b) | Or (a, b) | Seq (a, b) -> 1 + size a + size b
  | Inst ie -> 1 + inst_size ie

let rec inst_depth = function
  | I_prim _ -> 0
  | I_not e -> 1 + inst_depth e
  | I_and (a, b) | I_or (a, b) | I_seq (a, b) ->
      1 + max (inst_depth a) (inst_depth b)

let rec depth = function
  | Prim _ -> 0
  | Not e -> 1 + depth e
  | And (a, b) | Or (a, b) | Seq (a, b) -> 1 + max (depth a) (depth b)
  | Inst ie -> 1 + inst_depth ie

let rec inst_primitives acc = function
  | I_prim p -> Event_type.Set.add p acc
  | I_not e -> inst_primitives acc e
  | I_and (a, b) | I_or (a, b) | I_seq (a, b) ->
      inst_primitives (inst_primitives acc a) b

let rec set_primitives acc = function
  | Prim p -> Event_type.Set.add p acc
  | Not e -> set_primitives acc e
  | And (a, b) | Or (a, b) | Seq (a, b) ->
      set_primitives (set_primitives acc a) b
  | Inst ie -> inst_primitives acc ie

let primitives e = set_primitives Event_type.Set.empty e
let primitives_inst e = inst_primitives Event_type.Set.empty e

let rec inst_has_negation = function
  | I_prim _ -> false
  | I_not _ -> true
  | I_and (a, b) | I_or (a, b) | I_seq (a, b) ->
      inst_has_negation a || inst_has_negation b

let rec has_negation = function
  | Prim _ -> false
  | Not _ -> true
  | And (a, b) | Or (a, b) | Seq (a, b) -> has_negation a || has_negation b
  | Inst ie -> inst_has_negation ie

let rec has_instance = function
  | Prim _ -> false
  | Not e -> has_instance e
  | And (a, b) | Or (a, b) | Seq (a, b) -> has_instance a || has_instance b
  | Inst _ -> true

(* Negation- and instance-free expressions are within the regular-language
   fragment that Ode-style automata can detect. *)
let is_regular e = not (has_negation e) && not (has_instance e)

let rec map_primitives f = function
  | Prim p -> Prim (f p)
  | Not e -> Not (map_primitives f e)
  | And (a, b) -> And (map_primitives f a, map_primitives f b)
  | Or (a, b) -> Or (map_primitives f a, map_primitives f b)
  | Seq (a, b) -> Seq (map_primitives f a, map_primitives f b)
  | Inst ie -> Inst (map_primitives_inst f ie)

and map_primitives_inst f = function
  | I_prim p -> I_prim (f p)
  | I_not e -> I_not (map_primitives_inst f e)
  | I_and (a, b) -> I_and (map_primitives_inst f a, map_primitives_inst f b)
  | I_or (a, b) -> I_or (map_primitives_inst f a, map_primitives_inst f b)
  | I_seq (a, b) -> I_seq (map_primitives_inst f a, map_primitives_inst f b)

(* Concrete syntax (Fig. 1): negation [-]/[-=], conjunction [+]/[+=],
   precedence [<]/[<=], disjunction [,]/[,=].  Priorities decrease as
   negation > {conjunction, precedence} > disjunction; instance-oriented
   operators bind tighter than set-oriented ones. *)

type operator =
  | Negation
  | Conjunction
  | Precedence
  | Disjunction

type granularity = Set_oriented | Instance_oriented

let operator_symbol op gran =
  let base =
    match op with
    | Negation -> "-"
    | Conjunction -> "+"
    | Precedence -> "<"
    | Disjunction -> ","
  in
  match gran with Set_oriented -> base | Instance_oriented -> base ^ "="

let operator_priority = function
  | Negation -> 3
  | Conjunction | Precedence -> 2
  | Disjunction -> 1

let operator_dimension = function
  | Negation | Conjunction | Disjunction -> "boolean"
  | Precedence -> "temporal"

(* Rows of Fig. 1, in the paper's decreasing-priority order. *)
let operator_table =
  [
    (Negation, operator_symbol Negation Instance_oriented, operator_symbol Negation Set_oriented);
    (Conjunction, operator_symbol Conjunction Instance_oriented, operator_symbol Conjunction Set_oriented);
    (Precedence, operator_symbol Precedence Instance_oriented, operator_symbol Precedence Set_oriented);
    (Disjunction, operator_symbol Disjunction Instance_oriented, operator_symbol Disjunction Set_oriented);
  ]

let operator_name = function
  | Negation -> "Negation"
  | Conjunction -> "Conjunction"
  | Precedence -> "Precedence"
  | Disjunction -> "Disjunction"

(* Pretty-printing with minimal parentheses.  [ctx] is the priority of the
   enclosing operator; a child with strictly lower priority gets parens.
   Conjunction and precedence share a priority level, so mixing them always
   parenthesizes to avoid relying on parse associativity. *)

let rec pp_inst_prec ~ctx ppf e =
  (* Binary operators are printed left-associatively: the left child may sit
     at the operator's own priority without parentheses, the right child may
     not. *)
  let binary sym prio a b =
    let wrap = ctx >= prio in
    if wrap then Fmt.pf ppf "(";
    Fmt.pf ppf "%a %s %a" (pp_inst_prec ~ctx:(prio - 1)) a sym
      (pp_inst_prec ~ctx:prio) b;
    if wrap then Fmt.pf ppf ")"
  in
  match e with
  | I_prim p -> Event_type.pp ppf p
  | I_not a -> Fmt.pf ppf "-=%a" (pp_inst_prec ~ctx:3) a
  | I_and (a, b) -> binary "+=" 2 a b
  | I_or (a, b) -> binary ",=" 1 a b
  | I_seq (a, b) -> binary "<=" 2 a b

let rec pp_set_prec ~ctx ppf e =
  let binary sym prio a b =
    let wrap = ctx >= prio in
    if wrap then Fmt.pf ppf "(";
    Fmt.pf ppf "%a %s %a" (pp_set_prec ~ctx:(prio - 1)) a sym
      (pp_set_prec ~ctx:prio) b;
    if wrap then Fmt.pf ppf ")"
  in
  match e with
  | Prim p -> Event_type.pp ppf p
  | Not a -> Fmt.pf ppf "-%a" (pp_set_prec ~ctx:3) a
  | And (a, b) -> binary "+" 2 a b
  | Or (a, b) -> binary "," 1 a b
  | Seq (a, b) -> binary "<" 2 a b
  | Inst ie ->
      (* Instance subexpressions always parenthesized at the set level:
         they bind tighter and the parens make the granularity switch
         visible. *)
      Fmt.pf ppf "(%a)" (pp_inst_prec ~ctx:0) ie

let pp_inst ppf e = pp_inst_prec ~ctx:0 ppf e
let pp ppf e = pp_set_prec ~ctx:0 ppf e
let to_string e = Fmt.str "%a" pp e
let inst_to_string e = Fmt.str "%a" pp_inst e
