(* Parser for the concrete event-expression syntax of Fig. 1.

     expr      := conj ( ',' conj )*                       set disjunction
     conj      := unary ( ('+' | '<') unary )*             left-associative
     unary     := '-' unary | iexpr
     iexpr     := iconj ( ',=' iconj )*                    instance level
     iconj     := iunary ( ('+=' | '<=') iunary )*
     iunary    := '-=' iunary | atom
     atom      := '(' expr ')' | event-type

   An event type is an identifier immediately followed by a parenthesized
   class (e.g. [modify(stock.quantity)]), or a bare identifier (external
   event).  Applying an instance-oriented operator to a set-oriented
   subexpression is a type error, reported with a position. *)

open Chimera_event

type token =
  | T_prim of Event_type.t
  | T_lparen
  | T_rparen
  | T_minus
  | T_minus_eq
  | T_plus
  | T_plus_eq
  | T_lt
  | T_lt_eq
  | T_comma
  | T_comma_eq
  | T_eof

exception Parse_error of string * int

let fail pos msg = raise (Parse_error (msg, pos))

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let emit pos tok = tokens := (tok, pos) :: !tokens in
  let rec scan i =
    if i >= n then emit i T_eof
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1)
      | '(' ->
          emit i T_lparen;
          scan (i + 1)
      | ')' ->
          emit i T_rparen;
          scan (i + 1)
      | '-' | '+' | '<' | ',' ->
          let eq = i + 1 < n && s.[i + 1] = '=' in
          let tok =
            match (s.[i], eq) with
            | '-', false -> T_minus
            | '-', true -> T_minus_eq
            | '+', false -> T_plus
            | '+', true -> T_plus_eq
            | '<', false -> T_lt
            | '<', true -> T_lt_eq
            | ',', false -> T_comma
            | ',', true -> T_comma_eq
            | _ -> assert false
          in
          emit i tok;
          scan (if eq then i + 2 else i + 1)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          (* An identifier immediately followed by '(' is an event-type
             literal spanning up to the matching ')'. *)
          if !j < n && s.[!j] = '(' then begin
            let close = ref (!j + 1) in
            while !close < n && s.[!close] <> ')' do
              incr close
            done;
            if !close >= n then fail i "unterminated event type";
            let text = String.sub s i (!close - i + 1) in
            match Event_type.of_string text with
            | Ok etype ->
                emit i (T_prim etype);
                scan (!close + 1)
            | Error msg -> fail i msg
          end
          else begin
            let text = String.sub s i (!j - i) in
            match Event_type.of_string text with
            | Ok etype ->
                emit i (T_prim etype);
                scan !j
            | Error msg -> fail i msg
          end
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  scan 0;
  List.rev !tokens

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> (T_eof, 0) | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

(* A parsed subexpression that is still granularity-polymorphic: a
   primitive (or a parenthesized instance expression) can flow to either
   level. *)
type poly = P_set of Expr.set | P_inst of Expr.inst

let to_set = function P_set s -> s | P_inst i -> Expr.inst i

let to_inst pos = function
  | P_inst i -> i
  | P_set (Expr.Prim p) -> Expr.I_prim p
  | P_set (Expr.Inst i) -> i
  | P_set _ ->
      fail pos
        "instance-oriented operator applied to a set-oriented subexpression"

let rec parse_expr st =
  let first = parse_conj st in
  let rec loop acc =
    match peek st with
    | T_comma, _ ->
        advance st;
        let rhs = parse_conj st in
        loop (Expr.disj acc (to_set rhs))
    | _ -> acc
  in
  match peek st with
  | T_comma, _ -> P_set (loop (to_set first))
  | _ -> first

and parse_conj st =
  let first = parse_unary st in
  let rec loop acc =
    match peek st with
    | T_plus, _ ->
        advance st;
        let rhs = parse_unary st in
        loop (Expr.conj acc (to_set rhs))
    | T_lt, _ ->
        advance st;
        let rhs = parse_unary st in
        loop (Expr.seq acc (to_set rhs))
    | _ -> acc
  in
  match peek st with
  | (T_plus | T_lt), _ -> P_set (loop (to_set first))
  | _ -> first

and parse_unary st =
  match peek st with
  | T_minus, _ ->
      advance st;
      let inner = parse_unary st in
      P_set (Expr.not_ (to_set inner))
  | _ -> parse_iexpr st

and parse_iexpr st =
  let first = parse_iconj st in
  let rec loop acc =
    match peek st with
    | T_comma_eq, pos ->
        advance st;
        let rhs = parse_iconj st in
        loop (Expr.i_disj acc (to_inst pos rhs))
    | _ -> acc
  in
  match peek st with
  | T_comma_eq, pos -> P_inst (loop (to_inst pos first))
  | _ -> first

and parse_iconj st =
  let first = parse_iunary st in
  let rec loop acc =
    match peek st with
    | T_plus_eq, pos ->
        advance st;
        let rhs = parse_iunary st in
        loop (Expr.i_conj acc (to_inst pos rhs))
    | T_lt_eq, pos ->
        advance st;
        let rhs = parse_iunary st in
        loop (Expr.i_seq acc (to_inst pos rhs))
    | _ -> acc
  in
  match peek st with
  | (T_plus_eq | T_lt_eq), pos -> P_inst (loop (to_inst pos first))
  | _ -> first

and parse_iunary st =
  match peek st with
  | T_minus_eq, pos ->
      advance st;
      let inner = parse_iunary st in
      P_inst (Expr.i_not (to_inst pos inner))
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | T_prim p, _ ->
      advance st;
      P_inst (Expr.I_prim p)
  | T_lparen, _ ->
      advance st;
      let inner = parse_expr st in
      (match peek st with
      | T_rparen, _ -> advance st
      | _, pos -> fail pos "expected ')'");
      inner
  | _, pos -> fail pos "expected an event type or '('"

let parse s =
  match tokenize s with
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "parse error at %d: %s" pos msg)
  | toks -> (
      let st = { toks } in
      match parse_expr st with
      | exception Parse_error (msg, pos) ->
          Error (Printf.sprintf "parse error at %d: %s" pos msg)
      | value -> (
          match peek st with
          | T_eof, _ -> Ok (to_set value)
          | _, pos -> Error (Printf.sprintf "parse error at %d: trailing input" pos)))

let parse_inst s =
  match parse s with
  | Error _ as e -> e
  | Ok (Expr.Prim p) -> Ok (Expr.I_prim p)
  | Ok (Expr.Inst i) -> Ok i
  | Ok _ -> Error "expected an instance-oriented expression"

let parse_exn s =
  match parse s with Ok e -> e | Error msg -> invalid_arg msg

let parse_inst_exn s =
  match parse_inst s with Ok e -> e | Error msg -> invalid_arg msg
