(** The ts / ots semantics of the event calculus (Section 4).

    [ts] maps an expression, an instant and a window R to a signed integer:
    positive iff the expression is active, with the magnitude carrying the
    activation timestamp (or the evaluation instant when inactive).
    Negation is sign flip, so boolean laws (De Morgan, distributivity, …)
    hold for the values themselves. *)

open Chimera_util
open Chimera_event

type style =
  | Logical  (** Case-analysis definition (the "logical style"). *)
  | Algebraic
      (** Closed form via min/max and the sign function u (the "algebraic
          style"); provably equal to {!Logical} and property-tested so. *)

type env

val env : ?style:style -> Event_base.t -> window:Window.t -> env
(** An evaluation context: the event base, the window R (events since the
    rule's last consumption) and the semantic style (default {!Logical}). *)

val window : env -> Window.t
val event_base : env -> Event_base.t
val with_window : env -> window:Window.t -> env

val u : int -> int
(** The sign function: [1] on positives, [-1] otherwise. *)

val ts : env -> at:Time.t -> Expr.set -> int
val ots : env -> at:Time.t -> Expr.inst -> Ident.Oid.t -> int

val active : env -> at:Time.t -> Expr.set -> bool
(** [ts > 0]. *)

val active_on : env -> at:Time.t -> Expr.inst -> Ident.Oid.t -> bool

val activation : env -> at:Time.t -> Expr.set -> Time.t option
(** The activation timestamp when active. *)

val exists_active : env -> upto:Time.t -> Expr.set -> Time.t option
(** First instant in [(window.after, upto]] (plus the bound itself) at
    which the expression is active — the existential core of the
    triggering predicate T(r, t) of Section 4.4.  Exact: the sign of ts
    can only change at event instants. *)

val occurred_objects :
  ?candidates:Ident.Oid.t list -> env -> at:Time.t -> Expr.inst -> Ident.Oid.t list
(** Objects bound by the [occurred] event formula: those activating the
    instance expression at [at].  Defaults to candidates affected within
    the window; pass [candidates] to widen (negations can hold of objects
    untouched by any event). *)

val occurrence_instants :
  env -> at:Time.t -> Expr.inst -> Ident.Oid.t -> Time.t list
(** Instants bound by the [at] event formula: event instants in the window
    at which the expression arises for the object (activation timestamp
    equal to the instant itself), in ascending order. *)

val series : env -> Expr.set -> instants:Time.t list -> (Time.t * int) list
(** Samples [ts] at the given instants (the Fig. 5 reproduction). *)
