(* Memoized ts evaluation over interned (hash-consed) expressions.

   The recompute-from-indexes evaluation of Section 5 re-derives every
   subexpression value on each probe.  Because the event base is
   append-only, ts(E, at) over a window with a fixed lower bound never
   changes once computed, so (node, instant) pairs can be cached across
   probes — and across rules, since structurally equal subexpressions
   intern to the same node.

   Interning happens once per expression ({!intern}); evaluation then runs
   over an int-indexed node graph with cheap (int * int) cache keys, never
   re-hashing subtrees.  This is the ablation substrate behind bench E7. *)

open Chimera_util
open Chimera_event

type node =
  | N_prim of Event_type.t
  | N_not of int
  | N_and of int * int
  | N_or of int * int
  | N_seq of int * int
  | N_inst of int  (** set-level lifting of the instance node *)
  | N_iprim of Event_type.t
  | N_inot of int
  | N_iand of int * int
  | N_ior of int * int
  | N_iseq of int * int

type handle = int

module Pair_key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash (a, b) = (a * 1_000_003) + b
end

module Triple_key = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (((a * 1_000_003) + b) * 1_000_003) + c
end

module Pair_tbl = Hashtbl.Make (Pair_key)
module Triple_tbl = Hashtbl.Make (Triple_key)

type t = {
  eb : Event_base.t;
  mutable after : Time.t;
      (** window lower bound; the value cache is valid for it only *)
  nodes : node Vec.t;
  set_ids : (Expr.set, int) Hashtbl.t;
  inst_ids : (Expr.inst, int) Hashtbl.t;
  node_ids : (node, int) Hashtbl.t;
  set_cache : int Pair_tbl.t;  (** (node, at) -> value *)
  inst_cache : int Triple_tbl.t;  (** (node, at, oid) -> value *)
  mutable hits : int;
  mutable misses : int;
}

let create eb ~after =
  {
    eb;
    after;
    nodes = Vec.create ~dummy:(N_prim (Event_type.external_ ~name:"_" ~class_name:""));
    set_ids = Hashtbl.create 16;
    inst_ids = Hashtbl.create 16;
    node_ids = Hashtbl.create 16;
    set_cache = Pair_tbl.create 64;
    inst_cache = Triple_tbl.create 64;
    hits = 0;
    misses = 0;
  }

let hits t = t.hits
let misses t = t.misses
let event_base t = t.eb
let node_count t = Vec.length t.nodes

(* Structural interning: one deep traversal per distinct expression. *)
let alloc t node =
  match Hashtbl.find_opt t.node_ids node with
  | Some id -> id
  | None ->
      let id = Vec.length t.nodes in
      Vec.push t.nodes node;
      Hashtbl.add t.node_ids node id;
      id

let rec intern_inst t ie =
  match Hashtbl.find_opt t.inst_ids ie with
  | Some id -> id
  | None ->
      let id =
        match ie with
        | Expr.I_prim p -> alloc t (N_iprim p)
        | Expr.I_not e -> alloc t (N_inot (intern_inst t e))
        | Expr.I_and (a, b) -> alloc t (N_iand (intern_inst t a, intern_inst t b))
        | Expr.I_or (a, b) -> alloc t (N_ior (intern_inst t a, intern_inst t b))
        | Expr.I_seq (a, b) -> alloc t (N_iseq (intern_inst t a, intern_inst t b))
      in
      Hashtbl.add t.inst_ids ie id;
      id

let rec intern t e =
  match Hashtbl.find_opt t.set_ids e with
  | Some id -> id
  | None ->
      let id =
        match e with
        | Expr.Prim p -> alloc t (N_prim p)
        | Expr.Not e -> alloc t (N_not (intern t e))
        | Expr.And (a, b) -> alloc t (N_and (intern t a, intern t b))
        | Expr.Or (a, b) -> alloc t (N_or (intern t a, intern t b))
        | Expr.Seq (a, b) -> alloc t (N_seq (intern t a, intern t b))
        | Expr.Inst ie -> alloc t (N_inst (intern_inst t ie))
      in
      Hashtbl.add t.set_ids e id;
      id

let window t ~at = Window.make ~after:t.after ~upto:(Time.max t.after at)

let prim_ts t ~at p =
  match Event_base.last_of_type t.eb ~etype:p ~window:(window t ~at) ~at with
  | Some stamp -> Time.to_int stamp
  | None -> -Time.to_int at

let prim_ots t ~at p oid =
  match
    Event_base.last_of_type_on t.eb ~etype:p ~oid ~window:(window t ~at) ~at
  with
  | Some stamp -> Time.to_int stamp
  | None -> -Time.to_int at

let rec eval_inst t ~at id oid =
  let key = (id, Time.to_int at, Ident.Oid.to_int oid) in
  match Triple_tbl.find_opt t.inst_cache key with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      let v =
        match Vec.get t.nodes id with
        | N_iprim p -> prim_ots t ~at p oid
        | N_inot e -> -eval_inst t ~at e oid
        | N_iand (a, b) ->
            let va = eval_inst t ~at a oid and vb = eval_inst t ~at b oid in
            if va > 0 && vb > 0 then max va vb else min va vb
        | N_ior (a, b) ->
            let va = eval_inst t ~at a oid and vb = eval_inst t ~at b oid in
            if va > 0 || vb > 0 then max va vb else min va vb
        | N_iseq (a, b) ->
            let vb = eval_inst t ~at b oid in
            if vb > 0 && eval_inst t ~at:(Time.of_int vb) a oid > 0 then vb
            else -Time.to_int at
        | N_prim _ | N_not _ | N_and _ | N_or _ | N_seq _ | N_inst _ ->
            invalid_arg "Memo: set node in instance position"
      in
      Triple_tbl.add t.inst_cache key v;
      v

let lift t ~at id =
  let oids = Event_base.oids_in t.eb ~window:(window t ~at) ~at in
  let is_negation =
    match Vec.get t.nodes id with N_inot _ -> true | _ -> false
  in
  if is_negation then
    match oids with
    | [] -> Time.to_int at
    | o :: os ->
        List.fold_left
          (fun acc oid -> min acc (eval_inst t ~at id oid))
          (eval_inst t ~at id o) os
  else
    match oids with
    | [] -> -Time.to_int at
    | o :: os ->
        List.fold_left
          (fun acc oid -> max acc (eval_inst t ~at id oid))
          (eval_inst t ~at id o) os

let rec eval t ~at id =
  let key = (id, Time.to_int at) in
  match Pair_tbl.find_opt t.set_cache key with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      t.misses <- t.misses + 1;
      let v =
        match Vec.get t.nodes id with
        | N_prim p -> prim_ts t ~at p
        | N_not e -> -eval t ~at e
        | N_and (a, b) ->
            let va = eval t ~at a and vb = eval t ~at b in
            if va > 0 && vb > 0 then max va vb else min va vb
        | N_or (a, b) ->
            let va = eval t ~at a and vb = eval t ~at b in
            if va > 0 || vb > 0 then max va vb else min va vb
        | N_seq (a, b) ->
            let vb = eval t ~at b in
            if vb > 0 && eval t ~at:(Time.of_int vb) a > 0 then vb
            else -Time.to_int at
        | N_inst ie -> lift t ~at ie
        | N_iprim _ | N_inot _ | N_iand _ | N_ior _ | N_iseq _ ->
            invalid_arg "Memo: instance node in set position"
      in
      Pair_tbl.add t.set_cache key v;
      v

let ts_handle t ~at handle = eval t ~at handle
let ts t ~at e = eval t ~at (intern t e)
let ots t ~at ie oid = eval_inst t ~at (intern_inst t ie) oid
let active t ~at e = ts t ~at e > 0
let active_handle t ~at handle = ts_handle t ~at handle > 0

(* Moving the window's lower bound (a consuming consideration) invalidates
   every cached value; interned node identities are kept. *)
let restart t ~after =
  Pair_tbl.reset t.set_cache;
  Triple_tbl.reset t.inst_cache;
  t.after <- after;
  t.hits <- 0;
  t.misses <- 0
