(** Related-work composite-event idioms derived inside the paper's minimal
    operator set (the conclusions' subsumption claim, made concrete).
    Combinators return plain core-calculus expressions; expressiveness
    boundaries (counting, interval bounds, strict adjacency) are
    documented in the implementation. *)

open Chimera_event

val any_of : Expr.set list -> Expr.set
(** Disjunction chain; raises [Invalid_argument] on []. *)

val all_of : Expr.set list -> Expr.set
(** Conjunction chain; raises [Invalid_argument] on []. *)

val sequence : Expr.set list -> Expr.set
(** Ordered conjunction (Samos "sequence"); raises on []. *)

val relative : Expr.set -> Expr.set -> Expr.set
(** Ode's relative operator: the core precedence. *)

val without : Expr.set -> absent:Expr.set -> Expr.set
(** [b] with no occurrence of [absent] in the window. *)

val not_followed_by : Expr.set -> by:Expr.set -> Expr.set
(** [a] holds and the a-then-[by] pattern never completed (the negated
    precedence; anchored on [by]'s latest activation). *)

val then_ : Expr.set -> Expr.set -> Expr.set

val net_created : create:Event_type.t -> delete:Event_type.t -> Expr.set
(** The Section 3.3 footnote: same-object creation without deletion. *)

val created_then : create:Event_type.t -> update:Event_type.t -> Expr.set
(** Same-object creation later followed by [update]. *)

val one_of_not_both : Expr.set -> Expr.set -> Expr.set
(** Exclusive disjunction (Reflex "xor"). *)

val quiet_period : tick:Expr.set -> quiet:Expr.set -> Expr.set
(** A clock tick while [quiet] never occurred. *)
