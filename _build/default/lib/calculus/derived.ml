(* Derived operators: related-work composite-event idioms expressed in the
   paper's minimal operator set.

   The paper's thesis is that four orthogonal operators (negation,
   conjunction, disjunction, precedence) at two granularities suffice; the
   conclusions claim the calculus subsumes the event languages of systems
   supporting "individual or disjunctive events".  This module makes the
   claim concrete: each combinator is a plain expression of the core
   calculus, and the test suite checks the intended activation semantics.

   Where a related-work operator is *not* expressible (counting operators
   like Samos' Times(n, E), or interval-bounded negation with explicit
   time spans), the combinator is absent and the boundary is documented
   here; the Snoop-style parameter contexts live in the baseline library
   as detectors instead. *)

let any_of = Expr.disj_list
let all_of = Expr.conj_list

(* Ordered conjunction (Samos "sequence"): all events, in order. *)
let sequence = function
  | [] -> invalid_arg "Derived.sequence: empty"
  | e :: rest -> List.fold_left Expr.seq e rest

(* Ode's "relative": occurrences of [b] after [a] became active — exactly
   the core precedence. *)
let relative a b = Expr.seq a b

(* [b] arrived with no [a] at all in the window (Reflex "not ... within
   the monitored interval"). *)
let without b ~absent = Expr.conj b (Expr.not_ absent)

(* "[a] happened and the a-then-by pattern never completed": the negated
   precedence.  Active iff [a] is active and the last occurrence of [by],
   if any, had no earlier [a] (the precedence anchors on [by]'s latest
   activation, so a fresh [a] after a completed pattern does not undo
   it). *)
let not_followed_by a ~by = Expr.conj a (Expr.not_ (Expr.seq a by))

(* Milestone chain: [a] then [b] then [c] (left-associated precedence). *)
let then_ a b = Expr.seq a b

(* The Section 3.3 footnote: net-effect creation — created on the same
   object with no deletion (instance conjunction with instance negation),
   at the set level. *)
let net_created ~create ~delete =
  Expr.inst (Expr.i_conj (Expr.I_prim create) (Expr.I_not (Expr.I_prim delete)))

(* Same-object lifecycle: created and later updated (the reorder motif). *)
let created_then ~create ~update =
  Expr.inst (Expr.i_seq (Expr.I_prim create) (Expr.I_prim update))

(* Exclusive disjunction (Reflex "xor"): one of the two arose, not both. *)
let one_of_not_both a b =
  Expr.disj
    (Expr.conj a (Expr.not_ b))
    (Expr.conj b (Expr.not_ a))

(* HiPAC-style guarded tick: the clock event fired while [condition_event]
   never did (see Engine.define_timer for the clock source). *)
let quiet_period ~tick ~quiet = Expr.conj tick (Expr.not_ quiet)

(* Expressiveness boundaries, kept as documentation and enforced by the
   test suite where meaningful:

   - Times(n, E) (Samos): ts only retains the most recent activation
     timestamp per node, so occurrence *counting* is not derivable; use an
     external counter (or n distinct event types).
   - A[E1, E2] interval operators (Snoop aperiodic/periodic): the calculus
     has no time-span literals; bounded windows come from the rule's
     consumption mode instead.
   - Strict immediate succession ("B directly after A with nothing in
     between"): the calculus deliberately abstracts from adjacency. *)
