(** Negation normal form: negations pushed through conjunction and
    disjunction using the value-level laws of Section 4 (machine-verified
    in the test suite).  Precedence and the instance-lifting boundary are
    barriers — the lift inspects the outermost constructor of the lifted
    expression, so that root is preserved; the one exploitable dual is
    [-(Inst ie) = Inst (I_not ie)] for exists-lifted [ie].  Value
    preserving: [ts (nnf e)] equals [ts e] at every instant, by
    property. *)

val nnf : Expr.set -> Expr.set
val nnf_inst : Expr.inst -> Expr.inst

val in_nnf : Expr.set -> bool
(** Negations only in front of primitives, precedences, and (residually)
    min-lifted instance expressions. *)

val inst_in_nnf : Expr.inst -> bool
