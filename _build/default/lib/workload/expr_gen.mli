(** Random event expressions and event streams over a given alphabet:
    drives the comparison/scaling benches and, wrapped in QCheck, the
    property tests. *)

open Chimera_util
open Chimera_event
open Chimera_calculus

type profile = {
  allow_negation : bool;
  allow_instance : bool;
  seq_bias : int;  (** weight of precedence among binary operators *)
}

val boolean_profile : profile
(** Negation allowed, set-oriented only. *)

val regular_profile : profile
(** Negation-free, set-oriented: the fragment all baselines support. *)

val sequence_profile : profile
(** Negation-free with precedence-heavy structure. *)

val full_profile : profile
(** Every operator, both granularities. *)

val gen_inst :
  Prng.t -> profile:profile -> alphabet:Event_type.t list -> depth:int ->
  Expr.inst

val gen :
  Prng.t ->
  ?profile:profile ->
  alphabet:Event_type.t list ->
  depth:int ->
  unit ->
  Expr.set

val batch :
  Prng.t ->
  ?profile:profile ->
  alphabet:Event_type.t list ->
  depth:int ->
  count:int ->
  unit ->
  Expr.set list
(** Up to [count] distinct expressions (gives up on duplicates after a
    bounded number of redraws). *)

val stream :
  Prng.t ->
  alphabet:Event_type.t list ->
  objects:int ->
  length:int ->
  (Event_type.t * Ident.Oid.t) list
(** A uniform random event stream over [objects] objects. *)
