(* Random event expressions over a given alphabet: drives the comparison
   and scaling benches, and (wrapped in QCheck) the property tests. *)

open Chimera_util
open Chimera_calculus

type profile = {
  allow_negation : bool;
  allow_instance : bool;
  seq_bias : int;  (** weight of precedence among binary operators *)
}

let boolean_profile = { allow_negation = true; allow_instance = false; seq_bias = 1 }
let regular_profile = { allow_negation = false; allow_instance = false; seq_bias = 1 }
let sequence_profile = { allow_negation = false; allow_instance = false; seq_bias = 4 }
let full_profile = { allow_negation = true; allow_instance = true; seq_bias = 1 }

let pick_type prng alphabet = Prng.pick prng (Array.of_list alphabet)

let rec gen_inst prng ~profile ~alphabet ~depth =
  if depth <= 0 then Expr.I_prim (pick_type prng alphabet)
  else
    let neg_weight = if profile.allow_negation then 1 else 0 in
    let total = 2 + profile.seq_bias + neg_weight + 1 (* leaf *) in
    let roll = Prng.next_int prng ~bound:total in
    if roll = 0 then Expr.I_prim (pick_type prng alphabet)
    else
      let sub () = gen_inst prng ~profile ~alphabet ~depth:(depth - 1) in
      if roll = 1 then Expr.I_and (sub (), sub ())
      else if roll = 2 then Expr.I_or (sub (), sub ())
      else if roll < 3 + profile.seq_bias then Expr.I_seq (sub (), sub ())
      else Expr.I_not (sub ())

let rec gen_set prng ~profile ~alphabet ~depth =
  if depth <= 0 then Expr.Prim (pick_type prng alphabet)
  else
    let neg_weight = if profile.allow_negation then 1 else 0 in
    let inst_weight = if profile.allow_instance then 1 else 0 in
    let total = 2 + profile.seq_bias + neg_weight + inst_weight + 1 in
    let roll = Prng.next_int prng ~bound:total in
    if roll = 0 then Expr.Prim (pick_type prng alphabet)
    else
      let sub () = gen_set prng ~profile ~alphabet ~depth:(depth - 1) in
      if roll = 1 then Expr.And (sub (), sub ())
      else if roll = 2 then Expr.Or (sub (), sub ())
      else if roll < 3 + profile.seq_bias then Expr.Seq (sub (), sub ())
      else if profile.allow_negation && roll = 3 + profile.seq_bias then
        Expr.Not (sub ())
      else
        Expr.inst (gen_inst prng ~profile ~alphabet ~depth:(depth - 1))

let gen prng ?(profile = boolean_profile) ~alphabet ~depth () =
  gen_set prng ~profile ~alphabet ~depth

(* A batch of distinct-ish expressions (duplicates are fine for load
   benches but deduplicated here for rule-set realism). *)
let batch prng ?(profile = boolean_profile) ~alphabet ~depth ~count () =
  let rec loop acc n guard =
    if n = 0 || guard = 0 then List.rev acc
    else
      let e = gen prng ~profile ~alphabet ~depth () in
      if List.exists (Expr.equal e) acc then loop acc n (guard - 1)
      else loop (e :: acc) (n - 1) guard
  in
  loop [] count (count * 50)

(* A random event stream over the alphabet: (type, object) pairs. *)
let stream prng ~alphabet ~objects ~length =
  let alphabet = Array.of_list alphabet in
  List.init length (fun _ ->
      let etype = Prng.pick prng alphabet in
      let oid = Ident.Oid.of_int (1 + Prng.next_int prng ~bound:objects) in
      (etype, oid))
