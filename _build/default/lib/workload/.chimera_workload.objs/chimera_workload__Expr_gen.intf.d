lib/workload/expr_gen.mli: Chimera_calculus Chimera_event Chimera_util Event_type Expr Ident Prng
