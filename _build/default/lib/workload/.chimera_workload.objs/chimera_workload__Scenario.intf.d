lib/workload/scenario.mli: Chimera_calculus Chimera_rules Chimera_util Engine Expr Prng Rule
