lib/workload/domain.ml: Char Chimera_event Chimera_store Event_type Fmt List Operation Printf Schema Value
