lib/workload/domain.mli: Chimera_event Chimera_store Event_type Operation Schema
