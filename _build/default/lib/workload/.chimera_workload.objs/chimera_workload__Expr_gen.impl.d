lib/workload/expr_gen.ml: Array Chimera_calculus Chimera_util Expr Ident List Prng
