lib/workload/scenario.ml: Action Chimera_calculus Chimera_rules Chimera_store Chimera_util Condition Domain Engine Expr_parse Fmt Ident List Object_store Operation Prng Query Rule Value
