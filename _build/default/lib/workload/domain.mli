(** The paper's running domain (stock products, shelf shows, stock
    orders): schema, event types and canonical operations shared by the
    examples, tests and benches. *)

open Chimera_event
open Chimera_store

val schema : unit -> Schema.t

val create_stock : Event_type.t
val delete_stock : Event_type.t
val modify_stock_quantity : Event_type.t
val modify_stock_minquantity : Event_type.t
val modify_show_quantity : Event_type.t
val create_stock_order : Event_type.t
val modify_order_delquantity : Event_type.t
val all_event_types : Event_type.t list

val abstract_alphabet : int -> Event_type.t list
(** [n] abstract event types (the paper's A, B, C, ...) for
    calculus-level workloads. *)

val new_stock :
  quantity:int -> maxquantity:int -> minquantity:int -> Operation.t
