(* End-to-end engine workloads on the stock/show/order domain: the
   inventory-management scenario the paper's examples sketch, used by the
   engine throughput bench (E6) and the examples. *)

open Chimera_util
open Chimera_calculus
open Chimera_store
open Chimera_rules

(* The reorder rule of Section 3.1's motivation: a product quantity on a
   shelf changed, and no stock order was created and followed by a delivery
   update — i.e. replenishment never progressed — while stock levels were
   reconfigured.  A faithful transcription of the paper's sample
   set-oriented expression. *)
let sample_composite_event =
  Expr_parse.parse_exn
    "modify(show.quantity) + -(create(stockOrder) < \
     modify(stockOrder.delquantity)) , (modify(stock.minquantity) < \
     modify(stock.quantity))"

(* Clamp rule from Section 2. *)
let check_stock_qty =
  {
    Rule.name = "checkStockQty";
    target = Some "stock";
    event = Expr_parse.parse_exn "create(stock)";
    condition =
      [
        Condition.Range { var = "S"; class_name = "stock" };
        Condition.Occurred
          { expr = Expr_parse.parse_inst_exn "create(stock)"; var = "S" };
        Condition.Compare
          (Query.Cmp
             ( Query.Gt,
               Query.Attr ("S", "quantity"),
               Query.Attr ("S", "maxquantity") ));
      ];
    action =
      [
        Action.A_modify
          {
            var = "S";
            attribute = "quantity";
            value = Query.Term (Query.Attr ("S", "maxquantity"));
          };
      ];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 5;
  }

(* Reorder: when a stock object was created and later its quantity dropped
   (instance-oriented precedence), raise a stock order for it. *)
let reorder_on_low_stock =
  {
    Rule.name = "reorderOnLowStock";
    target = None;
    event = Expr_parse.parse_exn "create(stock) <= modify(stock.quantity)";
    condition =
      [
        (* The range atom also screens out objects deleted since the
           events occurred (the paper's examples always declare it). *)
        Condition.Range { var = "S"; class_name = "stock" };
        Condition.Occurred
          {
            expr =
              Expr_parse.parse_inst_exn
                "create(stock) <= modify(stock.quantity)";
            var = "S";
          };
        Condition.Compare
          (Query.Cmp
             ( Query.Lt,
               Query.Attr ("S", "quantity"),
               Query.Attr ("S", "minquantity") ));
      ];
    action =
      [
        Action.A_create
          {
            class_name = "stockOrder";
            attrs =
              [
                ( "delquantity",
                  Query.Sub
                    ( Query.Term (Query.Attr ("S", "maxquantity")),
                      Query.Term (Query.Attr ("S", "quantity")) ) );
                ("stock_ref", Query.Term (Query.Var "S"));
              ];
            bind = None;
          };
      ];
    coupling = Rule.Immediate;
    consumption = Rule.Consuming;
    priority = 4;
  }

let standard_rules = [ check_stock_qty; reorder_on_low_stock ]

(* Builds an engine over the domain schema with the standard rules
   installed. *)
let engine ?config () =
  let engine = Engine.create ?config (Domain.schema ()) in
  List.iter (fun spec -> ignore (Engine.define_exn engine spec)) standard_rules;
  engine

(* Drives [lines] transaction lines of inventory traffic: creations,
   quantity updates and deletions with the given object churn. *)
let run_inventory_traffic prng engine ~lines ~ops_per_line =
  (* [live] tracks the objects still alive, including deletions queued
     earlier in the same line, so a line never touches an object it has
     already deleted. *)
  let live = ref [] in
  let pick_live () =
    match !live with
    | [] -> None
    | l -> Some (List.nth l (Prng.next_int prng ~bound:(List.length l)))
  in
  let new_stock () =
    Domain.new_stock
      ~quantity:(Prng.next_int prng ~bound:120)
      ~maxquantity:100 ~minquantity:10
  in
  for _ = 1 to lines do
    (* Explicit recursion: the op for position i must be generated before
       the op for i+1 (deletions constrain later picks), and List.init does
       not guarantee evaluation order. *)
    let rec gen_ops i =
      if i = 0 then []
      else
        let op =
          match Prng.next_int prng ~bound:10 with
          | 0 | 1 | 2 -> new_stock ()
          | 3 | 4 | 5 | 6 | 7 -> (
              match pick_live () with
              | Some oid ->
                  Operation.Modify
                    {
                      oid;
                      attribute = "quantity";
                      value = Value.Int (Prng.next_int prng ~bound:120);
                    }
              | None -> new_stock ())
          | _ -> (
              match pick_live () with
              | Some oid ->
                  live :=
                    List.filter (fun o -> not (Ident.Oid.equal o oid)) !live;
                  Operation.Delete { oid }
              | None -> new_stock ())
        in
        op :: gen_ops (i - 1)
    in
    let ops = gen_ops ops_per_line in
    (match Engine.execute_line engine ops with
    | Ok () -> ()
    | Error e -> invalid_arg (Fmt.str "inventory traffic: %a" Engine.pp_error e));
    live := Object_store.extent (Engine.store engine) ~class_name:"stock"
  done
