(* The paper's running domain: stock products, shelf shows and stock
   orders (Sections 2-3).  Centralizes the schema, the event types used by
   the examples/benches, and canonical operations. *)

open Chimera_event
open Chimera_store

let schema () =
  let s = Schema.create () in
  let define name attributes =
    match Schema.define s ~name ~attributes () with
    | Ok _ -> ()
    | Error e -> invalid_arg (Fmt.str "Domain.schema: %a" Schema.pp_error e)
  in
  define "stock"
    [
      ("quantity", Value.T_int);
      ("maxquantity", Value.T_int);
      ("minquantity", Value.T_int);
    ];
  define "show" [ ("quantity", Value.T_int); ("stock_ref", Value.T_oid) ];
  define "stockOrder"
    [ ("delquantity", Value.T_int); ("stock_ref", Value.T_oid) ];
  s

(* The event types of the paper's walkthroughs. *)
let create_stock = Event_type.create ~class_name:"stock"
let delete_stock = Event_type.delete ~class_name:"stock"
let modify_stock_quantity =
  Event_type.modify ~attribute:"quantity" ~class_name:"stock" ()
let modify_stock_minquantity =
  Event_type.modify ~attribute:"minquantity" ~class_name:"stock" ()
let modify_show_quantity =
  Event_type.modify ~attribute:"quantity" ~class_name:"show" ()
let create_stock_order = Event_type.create ~class_name:"stockOrder"
let modify_order_delquantity =
  Event_type.modify ~attribute:"delquantity" ~class_name:"stockOrder" ()

let all_event_types =
  [
    create_stock;
    delete_stock;
    modify_stock_quantity;
    modify_stock_minquantity;
    modify_show_quantity;
    create_stock_order;
    modify_order_delquantity;
  ]

(* Abstract event-type alphabets for calculus-level workloads (the paper's
   A, B, C, ...). *)
let abstract_alphabet n =
  List.init n (fun i ->
      let name = Printf.sprintf "ev%c" (Char.chr (Char.code 'A' + (i mod 26))) in
      let name = if i < 26 then name else Printf.sprintf "%s%d" name (i / 26) in
      Event_type.external_ ~name ~class_name:"obj")

let new_stock ~quantity ~maxquantity ~minquantity =
  Operation.Create
    {
      class_name = "stock";
      attrs =
        [
          ("quantity", Value.Int quantity);
          ("maxquantity", Value.Int maxquantity);
          ("minquantity", Value.Int minquantity);
        ];
    }
