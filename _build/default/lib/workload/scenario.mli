(** End-to-end engine workloads on the stock/show/order domain: the
    inventory-management scenario behind the engine bench (E6) and the
    examples. *)

open Chimera_util
open Chimera_calculus
open Chimera_rules

val sample_composite_event : Expr.set
(** The paper's Section 3.1 sample set-oriented expression, transcribed. *)

val check_stock_qty : Rule.spec
(** The clamp rule of Section 2. *)

val reorder_on_low_stock : Rule.spec
(** Raise a stock order when a product was created and later its quantity
    dropped below the minimum (instance-oriented precedence). *)

val standard_rules : Rule.spec list

val engine : ?config:Engine.config -> unit -> Engine.t
(** A fresh engine over the domain schema with {!standard_rules}
    installed. *)

val run_inventory_traffic :
  Prng.t -> Engine.t -> lines:int -> ops_per_line:int -> unit
(** Drives random create/modify/delete inventory traffic; raises
    [Invalid_argument] on engine errors. *)
