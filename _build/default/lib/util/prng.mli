(** Deterministic splitmix64 pseudo-random generator for reproducible
    workloads and benchmarks. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

val next_int : t -> bound:int -> int
(** Uniform in [\[0, bound)]. Raises [Invalid_argument] if [bound <= 0]. *)

val next_bool : t -> bool

val next_float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element. Raises [Invalid_argument] on an empty array. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
