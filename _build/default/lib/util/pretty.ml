(* Plain-text table rendering for the bench harness and examples.

   The experiment harness prints the same rows/series the paper's figures
   show; aligned monospace tables keep that output diffable. *)

type align = Left | Right

type table = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let table ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length header then
          invalid_arg "Pretty.table: aligns/header length mismatch";
        a
    | None -> List.map (fun _ -> Left) header
  in
  { title; header; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Pretty.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let rows t = List.rev t.rows

let render t =
  let all = t.header :: rows t in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let record_widths cells =
    List.iteri
      (fun i c -> widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  List.iter record_widths all;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line cells =
    let padded =
      List.mapi
        (fun i c -> pad (List.nth t.aligns i) widths.(i) c)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    "|-" ^ String.concat "-|-" dashes ^ "-|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (line r);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t = print_string (render t)

let float_cell ?(digits = 2) f = Printf.sprintf "%.*f" digits f
let int_cell = string_of_int

let ratio_cell ?(digits = 2) num den =
  if den = 0.0 then "inf" else Printf.sprintf "%.*fx" digits (num /. den)

let ns_cell ns =
  if ns >= 1e9 then Printf.sprintf "%.2fs" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2fms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2fus" (ns /. 1e3)
  else Printf.sprintf "%.0fns" ns
