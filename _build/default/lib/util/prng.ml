(* Deterministic splitmix64 PRNG.

   All synthetic workloads are seeded explicitly so every bench table and
   property test is reproducible; we never consult wall-clock randomness. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int t ~bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound must be positive";
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

let next_float t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let pick t xs =
  match Array.length xs with
  | 0 -> invalid_arg "Prng.pick: empty array"
  | n -> xs.(next_int t ~bound:n)

let split t = create ~seed:(Int64.to_int (next_int64 t))

let shuffle t xs =
  let n = Array.length xs in
  for i = n - 1 downto 1 do
    let j = next_int t ~bound:(i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done
