lib/util/ident.mli: Format
