lib/util/ident.ml: Fmt Format Int
