lib/util/time.ml: Fmt Int Stdlib
