lib/util/prng.mli:
