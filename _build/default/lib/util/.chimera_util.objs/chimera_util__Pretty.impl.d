lib/util/pretty.ml: Array Buffer List Printf String
