lib/util/vec.mli:
