lib/util/pretty.mli:
