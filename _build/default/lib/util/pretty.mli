(** Aligned plain-text tables for the experiment harness and examples. *)

type align = Left | Right

type table

val table :
  title:string -> header:string list -> ?aligns:align list -> unit -> table
(** [aligns] defaults to all-left; raises [Invalid_argument] when its
    length differs from the header's. *)

val add_row : table -> string list -> unit
(** Raises [Invalid_argument] on arity mismatch with the header. *)

val rows : table -> string list list
val render : table -> string
val print : table -> unit

(** {1 Cell formatting} *)

val float_cell : ?digits:int -> float -> string
val int_cell : int -> string

val ratio_cell : ?digits:int -> float -> float -> string
(** [ratio_cell num den] renders ["<num/den>x"], or ["inf"] on zero. *)

val ns_cell : float -> string
(** Nanoseconds with an adaptive unit (ns/us/ms/s). *)
