(** Static analysis of rule sets: the triggering graph (which rules' actions
    can trigger which rules) and a conservative termination check — the
    classical active-database companion to the engine's runtime cascade
    budget. *)

open Chimera_event

(** An event type an action may generate; [class_name = None] is a
    wildcard (target class not statically pinned). *)
type produced = {
  operation : Event_type.operation;
  class_name : string option;
  attribute : string option;
}

val pp_produced : Format.formatter -> produced -> unit

val produced_events : Rule.spec -> produced list
(** Event types the rule's action may generate, with variable classes
    recovered from the condition's range atoms and event formulas. *)

val may_trigger : Rule.spec -> Rule.spec -> bool
(** Conservative: [true] when a produced event matches a positive
    subscription of the target's V(E), or the target is always-relevant
    (negation-dominated). *)

type graph

val triggering_graph : Rule.spec list -> graph

val edges : graph -> (string * string list) list
(** Adjacency by rule name, in definition order. *)

val potential_cycles : Rule.spec list -> string list list
(** Strongly connected components that can sustain a cascade (size > 1 or
    self-looping); empty means the rule set provably terminates. *)

val terminates : Rule.spec list -> bool
val pp_graph : Format.formatter -> graph -> unit
