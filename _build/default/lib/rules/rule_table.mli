(** The Rule Table (Section 5): name-indexed, kept in decreasing priority
    order (ties break on definition order) for the selection step. *)

open Chimera_util

type t

val create : unit -> t

val add :
  t -> tx_start:Time.t -> Rule.spec -> (Rule.t, [> `Rule_error of string ]) result
(** Rejects duplicate names and invalid targeting. *)

val remove : t -> string -> (unit, [> `Rule_error of string ]) result
val find : t -> string -> Rule.t option

val rules : t -> Rule.t list
(** In selection order. *)

val cardinal : t -> int
val iter : (Rule.t -> unit) -> t -> unit

val select : t -> filter:(Rule.t -> bool) -> Rule.t option
(** Highest-priority triggered rule passing [filter]. *)
