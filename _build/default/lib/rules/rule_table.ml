(* The Rule Table (Section 5): name-indexed for fast access, and kept in a
   priority queue (here a sorted list rebuilt on definition — rule sets are
   small and static relative to event traffic) for the selection step. *)

type t = {
  by_name : (string, Rule.t) Hashtbl.t;
  mutable ordered : Rule.t list;  (** decreasing priority, then seqno *)
  mutable next_seqno : int;
}

let create () = { by_name = Hashtbl.create 32; ordered = []; next_seqno = 0 }

let order a b =
  let c = compare (Rule.priority b) (Rule.priority a) in
  if c <> 0 then c else compare a.Rule.seqno b.Rule.seqno

let add t ~tx_start spec =
  if Hashtbl.mem t.by_name spec.Rule.name then
    Error (`Rule_error (Printf.sprintf "rule %s already defined" spec.Rule.name))
  else
    match Rule.make ~seqno:t.next_seqno ~tx_start spec with
    | Error _ as e -> e
    | Ok rule ->
        t.next_seqno <- t.next_seqno + 1;
        Hashtbl.add t.by_name spec.Rule.name rule;
        t.ordered <- List.sort order (rule :: t.ordered);
        Ok rule

let remove t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> Error (`Rule_error (Printf.sprintf "unknown rule %s" name))
  | Some rule ->
      Hashtbl.remove t.by_name name;
      t.ordered <- List.filter (fun r -> r != rule) t.ordered;
      Ok ()

let find t name = Hashtbl.find_opt t.by_name name
let rules t = t.ordered
let cardinal t = Hashtbl.length t.by_name
let iter f t = List.iter f t.ordered

(* Highest-priority triggered rule passing [filter] (the coupling-mode
   selection of the rule-processing loop). *)
let select t ~filter =
  List.find_opt (fun r -> r.Rule.triggered && filter r) t.ordered
