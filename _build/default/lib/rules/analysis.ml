(* Static analysis of rule sets: the triggering graph and a conservative
   termination check.

   Rule A *may trigger* rule B when some event type A's action can
   generate matches B's relevance filter (a positive variation in V(B.E),
   or B is always-relevant).  The action's event types are approximated
   from its operations; variables whose class is not pinned by a condition
   range atom yield class-wildcard types, which match any subscription
   with the same operation (and attribute).

   A cycle in this graph means the rule set may not terminate — the
   classical active-database static check; the engine's runtime budget
   (max_rule_executions) is the corresponding dynamic guard. *)

open Chimera_event
open Chimera_calculus
open Chimera_optimizer

(* An event type the action may generate; [class_name = None] is a
   wildcard (statically unknown target class). *)
type produced = {
  operation : Event_type.operation;
  class_name : string option;
  attribute : string option;
}

let pp_produced ppf p =
  Fmt.pf ppf "%s(%s%a)"
    (Event_type.operation_name p.operation)
    (Option.value ~default:"*" p.class_name)
    Fmt.(option (fun ppf a -> Fmt.pf ppf ".%s" a))
    p.attribute

(* Classes bound to each condition variable by range atoms (and by the
   classes of the event types an occurred/at formula mentions, when they
   all agree). *)
let variable_classes condition =
  let add acc var class_name =
    match List.assoc_opt var acc with
    | None -> (var, Some class_name) :: acc
    | Some (Some c) when String.equal c class_name -> acc
    | Some _ -> (var, None) :: List.remove_assoc var acc
  in
  List.fold_left
    (fun acc atom ->
      match atom with
      | Condition.Range { var; class_name } -> add acc var class_name
      | Condition.Occurred { expr; var } | Condition.At { expr; var; _ } -> (
          let classes =
            Event_type.Set.fold
              (fun p acc -> Event_type.class_name p :: acc)
              (Expr.primitives_inst expr) []
          in
          match List.sort_uniq String.compare classes with
          | [ c ] -> add acc var c
          | _ -> acc)
      | Condition.Compare _ -> acc
      (* Bindings inside an Absent are local: they never reach actions. *)
      | Condition.Absent _ -> acc)
    [] condition

let class_of_var classes var =
  match List.assoc_opt var classes with Some c -> c | None -> None

(* Event types one action op may generate. *)
let produced_by classes op =
  match op with
  | Action.A_create { class_name; _ } ->
      [ { operation = Event_type.Create; class_name = Some class_name; attribute = None } ]
  | Action.A_delete { var } ->
      [ { operation = Event_type.Delete; class_name = class_of_var classes var; attribute = None } ]
  | Action.A_modify { var; attribute; _ } ->
      [
        {
          operation = Event_type.Modify;
          class_name = class_of_var classes var;
          attribute = Some attribute;
        };
      ]
  | Action.A_generalize { to_class; _ } ->
      [ { operation = Event_type.Generalize; class_name = Some to_class; attribute = None } ]
  | Action.A_specialize { to_class; _ } ->
      [ { operation = Event_type.Specialize; class_name = Some to_class; attribute = None } ]
  | Action.A_select { class_name } ->
      [ { operation = Event_type.Select; class_name = Some class_name; attribute = None } ]

let produced_events (spec : Rule.spec) =
  let classes = variable_classes spec.Rule.condition in
  List.concat_map (produced_by classes) spec.Rule.action

(* Does a produced event type match a concrete subscription?  Wildcard
   classes match any class; an attribute-qualified modify production also
   matches the unqualified subscription. *)
let matches produced ~subscription =
  let op_ok =
    match (produced.operation, Event_type.operation subscription) with
    | Event_type.External a, Event_type.External b -> String.equal a b
    | a, b -> a = b
  in
  let class_ok =
    match produced.class_name with
    | None -> true
    | Some c -> String.equal c (Event_type.class_name subscription)
  in
  let attribute_ok =
    match (Event_type.attribute subscription, produced.attribute) with
    | None, _ -> true
    | Some sub_attr, Some prod_attr -> String.equal sub_attr prod_attr
    | Some _, None -> false
  in
  op_ok && class_ok && attribute_ok

(* May [a]'s action trigger [b]?  Conservative: true when a produced event
   matches a positive subscription of V(b.event), or when b triggers on
   any activity at all. *)
let may_trigger (a : Rule.spec) (b : Rule.spec) =
  let produced = produced_events a in
  produced <> []
  && (let relevance = Relevance.of_expr b.Rule.event in
      Relevance.always_relevant relevance
      || List.exists
           (fun p ->
             Event_type.Set.exists
               (fun subscription ->
                 (match Simplify.polarity_of (Relevance.v_set relevance) subscription with
                 | Some Variation.Positive | Some Variation.Both -> true
                 | Some Variation.Negative | None -> false)
                 && matches p ~subscription)
               (Expr.primitives b.Rule.event))
           produced)

type graph = {
  rules : Rule.spec array;
  edges : int list array;  (** adjacency by rule index *)
}

let triggering_graph specs =
  let rules = Array.of_list specs in
  let n = Array.length rules in
  let edges =
    Array.init n (fun i ->
        List.filter
          (fun j -> may_trigger rules.(i) rules.(j))
          (List.init n (fun j -> j)))
  in
  { rules; edges }

let edges g =
  Array.to_list
    (Array.mapi
       (fun i targets ->
         ( g.rules.(i).Rule.name,
           List.map (fun j -> g.rules.(j).Rule.name) targets ))
       g.edges)

(* Tarjan's strongly connected components; a component of size > 1, or a
   self-looping singleton, is a potential non-termination source. *)
let sccs g =
  let n = Array.length g.rules in
  let index = Array.make n (-1)
  and lowlink = Array.make n 0
  and on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.edges.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !components

let potential_cycles specs =
  let g = triggering_graph specs in
  let cyclic component =
    match component with
    | [ v ] -> List.mem v g.edges.(v)
    | _ :: _ :: _ -> true
    | [] -> false
  in
  List.filter_map
    (fun component ->
      if cyclic component then
        Some (List.map (fun v -> g.rules.(v).Rule.name) component)
      else None)
    (sccs g)

let terminates specs = potential_cycles specs = []

let pp_graph ppf g =
  List.iter
    (fun (name, targets) ->
      Fmt.pf ppf "%s -> {%a}@." name Fmt.(list ~sep:(any ", ") string) targets)
    (edges g)
