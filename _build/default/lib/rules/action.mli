(** Rule actions: sequences of data manipulations, executed once per
    binding produced by the condition (set-oriented execution,
    Section 2). *)

open Chimera_util
open Chimera_store

type op =
  | A_create of {
      class_name : string;
      attrs : (string * Query.expr) list;
      bind : string option;
          (** optionally binds the created object for later ops *)
    }
  | A_delete of { var : string }
  | A_modify of { var : string; attribute : string; value : Query.expr }
  | A_generalize of { var : string; to_class : string }
  | A_specialize of { var : string; to_class : string }
  | A_select of { class_name : string }

type t = op list

type error = Condition.error

val instantiate :
  Object_store.t ->
  Condition.env ->
  op ->
  (Operation.t * (Ident.Oid.t -> Condition.env), error) result
(** Resolves one action op under a binding environment into a concrete
    store operation; the returned function extends the environment with
    the affected object (for [A_create]'s [bind]). *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
