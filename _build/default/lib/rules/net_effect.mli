(** Per-object net effects of a window of events: the classical summary
    that makes Chimera's [holds] predicate redundant (the calculus
    footnote of Section 3.3). *)

open Chimera_util
open Chimera_event

type effect =
  | Net_created of { class_name : string; modified : string list }
  | Net_deleted of { class_name : string }
  | Net_modified of { class_name : string; modified : string list }
  | No_net_effect  (** created and deleted within the window *)

val effect_name : effect -> string
val pp_effect : Format.formatter -> effect -> unit

val compute :
  Event_base.t -> window:Window.t -> (Ident.Oid.t * effect) list
(** Per-object summary, in first-affected order.  A creation erases prior
    history (re-creation after delete counts as fresh); a deletion after a
    creation cancels both. *)

val created : Event_base.t -> window:Window.t -> Ident.Oid.t list
val deleted : Event_base.t -> window:Window.t -> Ident.Oid.t list
val modified : Event_base.t -> window:Window.t -> Ident.Oid.t list
