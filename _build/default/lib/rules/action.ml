(* Rule actions: sequences of data manipulations, executed set-oriented —
   once per binding produced by the condition (Section 2's checkStockQty
   processes every violating object in a single rule execution). *)

open Chimera_util
open Chimera_store

type op =
  | A_create of {
      class_name : string;
      attrs : (string * Query.expr) list;
      bind : string option;
          (** optionally binds the created object for later ops *)
    }
  | A_delete of { var : string }
  | A_modify of { var : string; attribute : string; value : Query.expr }
  | A_generalize of { var : string; to_class : string }
  | A_specialize of { var : string; to_class : string }
  | A_select of { class_name : string }

type t = op list

type error = Condition.error

let ( let* ) = Result.bind

(* Instantiates one action op under a binding environment into concrete
   store operations.  [A_create] extends the environment, so instantiation
   threads it. *)
let instantiate store (env : Condition.env) op :
    (Operation.t * (Ident.Oid.t -> Condition.env), error) result =
  let resolve = Condition.lookup env in
  let as_object var =
    match resolve var with
    | Some (Value.Oid oid) -> Ok oid
    | Some v ->
        Error
          (`Type_error
            (Printf.sprintf "variable %s is not an object (%s)" var
               (Value.to_string v)))
    | None -> Error (`Unbound_variable var)
  in
  let keep_env _oid = env in
  match op with
  | A_create { class_name; attrs; bind } ->
      let* concrete =
        Condition.map_result
          (fun (a, e) ->
            let* v =
              (Query.eval_expr store ~resolve e
                : (Value.t, Query.error) result
                :> (Value.t, error) result)
            in
            Ok (a, v))
          attrs
      in
      let extend oid =
        match bind with
        | None -> env
        | Some var -> (var, Value.Oid oid) :: env
      in
      Ok (Operation.Create { class_name; attrs = concrete }, extend)
  | A_delete { var } ->
      let* oid = as_object var in
      Ok (Operation.Delete { oid }, keep_env)
  | A_modify { var; attribute; value } ->
      let* oid = as_object var in
      let* v =
        (Query.eval_expr store ~resolve value
          : (Value.t, Query.error) result
          :> (Value.t, error) result)
      in
      Ok (Operation.Modify { oid; attribute; value = v }, keep_env)
  | A_generalize { var; to_class } ->
      let* oid = as_object var in
      Ok (Operation.Generalize { oid; to_class }, keep_env)
  | A_specialize { var; to_class } ->
      let* oid = as_object var in
      Ok (Operation.Specialize { oid; to_class }, keep_env)
  | A_select { class_name } -> Ok (Operation.Select { class_name }, keep_env)

let pp_op ppf = function
  | A_create { class_name; attrs; bind } ->
      let pp_attr ppf (a, e) = Fmt.pf ppf "%s=%a" a Query.pp_expr e in
      Fmt.pf ppf "create %s(%a)%a" class_name
        Fmt.(list ~sep:comma pp_attr)
        attrs
        Fmt.(option (fun ppf v -> Fmt.pf ppf " as %s" v))
        bind
  | A_delete { var } -> Fmt.pf ppf "delete %s" var
  | A_modify { var; attribute; value } ->
      Fmt.pf ppf "modify(%s.%s, %a)" var attribute Query.pp_expr value
  | A_generalize { var; to_class } ->
      Fmt.pf ppf "generalize %s to %s" var to_class
  | A_specialize { var; to_class } ->
      Fmt.pf ppf "specialize %s to %s" var to_class
  | A_select { class_name } -> Fmt.pf ppf "select %s" class_name

let pp ppf ops = Fmt.(list ~sep:semi pp_op) ppf ops
