lib/rules/rule_table.mli: Chimera_util Rule Time
