lib/rules/net_effect.mli: Chimera_event Chimera_util Event_base Format Ident Window
