lib/rules/condition.ml: Chimera_calculus Chimera_store Chimera_util Expr Fmt Ident List Object_store Printf Query Result String Time Ts Value
