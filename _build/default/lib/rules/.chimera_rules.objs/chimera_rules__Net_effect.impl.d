lib/rules/net_effect.ml: Chimera_event Chimera_util Event_base Event_type Fmt Ident Int List Map Occurrence String
