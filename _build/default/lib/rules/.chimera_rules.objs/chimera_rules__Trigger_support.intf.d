lib/rules/trigger_support.mli: Chimera_calculus Chimera_event Event_base Rule Rule_table Ts
