lib/rules/condition.mli: Chimera_calculus Chimera_store Chimera_util Expr Format Object_store Query Time Ts Value
