lib/rules/action.mli: Chimera_store Chimera_util Condition Format Ident Object_store Operation Query
