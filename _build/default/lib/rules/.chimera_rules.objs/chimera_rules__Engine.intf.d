lib/rules/engine.mli: Chimera_event Chimera_store Chimera_util Condition Event_base Format Ident Object_store Operation Rule Rule_table Schema Time Trigger_support
