lib/rules/analysis.mli: Chimera_event Event_type Format Rule
