lib/rules/action.ml: Chimera_store Chimera_util Condition Fmt Ident Operation Printf Query Result Value
