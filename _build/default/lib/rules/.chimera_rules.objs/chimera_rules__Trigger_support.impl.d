lib/rules/trigger_support.ml: Chimera_calculus Chimera_event Chimera_optimizer Chimera_util Event_base List Logs Memo Occurrence Relevance Rule Rule_table Time Ts Window
