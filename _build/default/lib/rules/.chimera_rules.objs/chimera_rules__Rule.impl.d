lib/rules/rule.ml: Action Chimera_calculus Chimera_event Chimera_optimizer Chimera_util Condition Event_type Expr Fmt List Memo Printf Relevance String Time
