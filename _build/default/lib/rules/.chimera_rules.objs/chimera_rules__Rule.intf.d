lib/rules/rule.mli: Action Chimera_calculus Chimera_optimizer Chimera_util Condition Expr Format Memo Relevance Time
