lib/rules/rule_table.ml: Hashtbl List Printf Rule
