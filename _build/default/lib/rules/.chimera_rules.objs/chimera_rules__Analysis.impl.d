lib/rules/analysis.ml: Action Array Chimera_calculus Chimera_event Chimera_optimizer Condition Event_type Expr Fmt List Option Relevance Rule Simplify String Variation
