(* Net effects of a window of events, per object.

   The paper's Section 3.3 footnote retires Chimera's [holds] predicate:
   event composition — e.g. "net-effect creation" — is expressible in the
   calculus directly.  This module provides the classical net-effect
   summary (Starburst-style) as a library service on top of the event
   base, so conditions and tools can reason about what a transaction
   amounted to:

   - created, then possibly modified            => net creation
   - created, then deleted                      => no net effect
   - modified (pre-existing), possibly deleted  => net delete / net modify
   - deleted (pre-existing)                     => net deletion *)

open Chimera_util
open Chimera_event

type effect =
  | Net_created of { class_name : string; modified : string list }
  | Net_deleted of { class_name : string }
  | Net_modified of { class_name : string; modified : string list }
  | No_net_effect  (** created and deleted within the window *)

let effect_name = function
  | Net_created _ -> "created"
  | Net_deleted _ -> "deleted"
  | Net_modified _ -> "modified"
  | No_net_effect -> "none"

let pp_effect ppf = function
  | Net_created { class_name; modified } ->
      Fmt.pf ppf "net-created %s%a" class_name
        Fmt.(list ~sep:nop (fun ppf a -> Fmt.pf ppf " ~%s" a))
        modified
  | Net_deleted { class_name } -> Fmt.pf ppf "net-deleted %s" class_name
  | Net_modified { class_name; modified } ->
      Fmt.pf ppf "net-modified %s (%a)" class_name
        Fmt.(list ~sep:(any ", ") string)
        modified
  | No_net_effect -> Fmt.string ppf "no net effect"

(* Folds one object's chronological event list into its net effect. *)
let summarize occs =
  let created = ref false in
  let deleted = ref false in
  let class_name = ref "" in
  let modified = ref [] in
  List.iter
    (fun occ ->
      let etype = Occurrence.etype occ in
      class_name := Event_type.class_name etype;
      match Event_type.operation etype with
      | Event_type.Create ->
          created := true;
          deleted := false;
          modified := []
      | Event_type.Delete -> deleted := true
      | Event_type.Modify -> (
          match Event_type.attribute etype with
          | Some attr when not (List.mem attr !modified) ->
              modified := attr :: !modified
          | _ -> ())
      | Event_type.Generalize | Event_type.Specialize
      | Event_type.Select | Event_type.External _ ->
          ())
    occs;
  let modified = List.sort String.compare !modified in
  match (!created, !deleted) with
  | true, true -> No_net_effect
  | true, false -> Net_created { class_name = !class_name; modified }
  | false, true -> Net_deleted { class_name = !class_name }
  | false, false ->
      if modified = [] then No_net_effect
      else Net_modified { class_name = !class_name; modified }

module Int_map = Map.Make (Int)

(* Per-object net effects over [window]; objects appear in first-affected
   order.  Qualified modify occurrences are considered once (the event
   base also indexes them under the unqualified type). *)
let compute eb ~window =
  let per_object = ref Int_map.empty in
  let order = ref [] in
  Event_base.iter_in eb ~window (fun occ ->
      let key = Ident.Oid.to_int (Occurrence.oid occ) in
      (match Int_map.find_opt key !per_object with
      | None ->
          order := key :: !order;
          per_object := Int_map.add key [ occ ] !per_object
      | Some occs -> per_object := Int_map.add key (occ :: occs) !per_object));
  List.rev_map
    (fun key ->
      let occs = List.rev (Int_map.find key !per_object) in
      (Ident.Oid.of_int key, summarize occs))
    !order

let created eb ~window =
  List.filter_map
    (fun (oid, effect) ->
      match effect with Net_created _ -> Some oid | _ -> None)
    (compute eb ~window)

let deleted eb ~window =
  List.filter_map
    (fun (oid, effect) ->
      match effect with Net_deleted _ -> Some oid | _ -> None)
    (compute eb ~window)

let modified eb ~window =
  List.filter_map
    (fun (oid, effect) ->
      match effect with Net_modified _ -> Some oid | _ -> None)
    (compute eb ~window)
