(** Terms, arithmetic expressions and comparison predicates over the
    object store: the query fragment shared by rule conditions and
    actions. *)

type term =
  | Const of Value.t
  | Var of string  (** a variable bound to an object or a scalar *)
  | Attr of string * string  (** [Attr (x, a)]: attribute [a] of object [x] *)

type comparison = Eq | Neq | Lt | Le | Gt | Ge
type predicate = Cmp of comparison * term * term

type expr =
  | Term of term
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Min of expr * expr
  | Max of expr * expr

type error = [ Object_store.error | `Unbound_variable of string ]

val pp_error : Format.formatter -> error -> unit

val eval_term :
  Object_store.t ->
  resolve:(string -> Value.t option) ->
  term ->
  (Value.t, error) result
(** [resolve] maps variables to their values ([Value.Oid] for object
    variables). *)

val eval_expr :
  Object_store.t ->
  resolve:(string -> Value.t option) ->
  expr ->
  (Value.t, error) result

val eval_predicate :
  Object_store.t ->
  resolve:(string -> Value.t option) ->
  predicate ->
  (bool, error) result
(** Ordering comparisons on incompatible kinds are type errors; equality
    is structural. *)

val comparison_symbol : comparison -> string
val pp_term : Format.formatter -> term -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_predicate : Format.formatter -> predicate -> unit
