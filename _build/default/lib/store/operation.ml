(* Data-manipulation operations: the sources of Chimera's internal events.

   Applying an operation mutates the store and reports the event
   occurrences to record (type + affected object), which the Block Executor
   forwards to the Event Handler.  A [modify] reports both nothing extra:
   the attribute-qualified type is recorded once and the event base indexes
   it under the unqualified type as well. *)

open Chimera_util
open Chimera_event

type t =
  | Create of { class_name : string; attrs : (string * Value.t) list }
  | Delete of { oid : Ident.Oid.t }
  | Modify of { oid : Ident.Oid.t; attribute : string; value : Value.t }
  | Generalize of { oid : Ident.Oid.t; to_class : string }
  | Specialize of { oid : Ident.Oid.t; to_class : string }
  | Select of { class_name : string }

(* An event to record: the oid is the affected object (for [Select], each
   object of the extent is reported as affected, matching Chimera's
   set-oriented select events). *)
type emitted = { etype : Event_type.t; affected : Ident.Oid.t }

let ( let* ) = Result.bind

let apply store op : (emitted list, Object_store.error) result =
  match op with
  | Create { class_name; attrs } ->
      let* oid = Object_store.insert store ~class_name ~attrs in
      Ok [ { etype = Event_type.create ~class_name; affected = oid } ]
  | Delete { oid } ->
      let* class_name = Object_store.class_of store oid in
      let* () = Object_store.delete store oid in
      Ok [ { etype = Event_type.delete ~class_name; affected = oid } ]
  | Modify { oid; attribute; value } ->
      let* class_name = Object_store.class_of store oid in
      let* () = Object_store.set store oid ~attribute ~value in
      Ok
        [
          {
            etype = Event_type.modify ~attribute ~class_name ();
            affected = oid;
          };
        ]
  | Generalize { oid; to_class } ->
      let* () = Object_store.generalize store oid ~to_class in
      Ok [ { etype = Event_type.generalize ~class_name:to_class; affected = oid } ]
  | Specialize { oid; to_class } ->
      let* () = Object_store.specialize store oid ~to_class in
      Ok [ { etype = Event_type.specialize ~class_name:to_class; affected = oid } ]
  | Select { class_name } ->
      let extent = Object_store.extent store ~class_name in
      Ok
        (List.map
           (fun oid ->
             { etype = Event_type.select ~class_name; affected = oid })
           extent)

let pp ppf = function
  | Create { class_name; attrs } ->
      let pp_attr ppf (a, v) = Fmt.pf ppf "%s=%a" a Value.pp v in
      Fmt.pf ppf "create %s(%a)" class_name Fmt.(list ~sep:comma pp_attr) attrs
  | Delete { oid } -> Fmt.pf ppf "delete %a" Ident.Oid.pp oid
  | Modify { oid; attribute; value } ->
      Fmt.pf ppf "modify %a.%s := %a" Ident.Oid.pp oid attribute Value.pp value
  | Generalize { oid; to_class } ->
      Fmt.pf ppf "generalize %a to %s" Ident.Oid.pp oid to_class
  | Specialize { oid; to_class } ->
      Fmt.pf ppf "specialize %a to %s" Ident.Oid.pp oid to_class
  | Select { class_name } -> Fmt.pf ppf "select %s" class_name
