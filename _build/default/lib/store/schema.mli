(** Class definitions with single inheritance. *)

type class_def = {
  name : string;
  super : string option;
  own_attributes : (string * Value.ty) list;
}

type t

type error =
  [ `Unknown_class of string
  | `Duplicate_class of string
  | `Unknown_attribute of string * string
  | `Type_error of string ]

val pp_error : Format.formatter -> error -> unit
val create : unit -> t
val find : t -> string -> (class_def, error) result
val mem : t -> string -> bool

val define :
  t ->
  name:string ->
  ?super:string ->
  attributes:(string * Value.ty) list ->
  unit ->
  (class_def, error) result
(** The superclass, if any, must already be defined. *)

val attributes : t -> string -> ((string * Value.ty) list, error) result
(** Including inherited attributes, superclass first; a subclass
    redefinition shadows. *)

val attribute_type :
  t -> class_name:string -> attribute:string -> (Value.ty, error) result

val is_subclass : t -> sub:string -> super:string -> bool
(** Reflexive and transitive; [false] when either class is unknown. *)

val superclass : t -> string -> (string option, error) result
val direct_subclasses : t -> string -> string list
val class_names : t -> string list
val pp : Format.formatter -> t -> unit
