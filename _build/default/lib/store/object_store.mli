(** The object store: class extents, attribute state and the primitive
    state-changing operations Chimera's internal events come from. *)

open Chimera_util

type t

type error =
  [ Schema.error | `Unknown_object of string | `Deleted_object of string ]

val pp_error : Format.formatter -> error -> unit
val create : Schema.t -> t
val schema : t -> Schema.t

val insert :
  t ->
  class_name:string ->
  attrs:(string * Value.t) list ->
  (Ident.Oid.t, error) result
(** Validates against the (inherited) class schema; attributes not
    provided start as [Null]. *)

val exists : t -> Ident.Oid.t -> bool
val class_of : t -> Ident.Oid.t -> (string, error) result
val get : t -> Ident.Oid.t -> attribute:string -> (Value.t, error) result

val set :
  t -> Ident.Oid.t -> attribute:string -> value:Value.t -> (unit, error) result

val delete : t -> Ident.Oid.t -> (unit, error) result

val generalize : t -> Ident.Oid.t -> to_class:string -> (unit, error) result
(** Moves the object up the hierarchy, dropping attributes the target does
    not declare. *)

val specialize : t -> Ident.Oid.t -> to_class:string -> (unit, error) result
(** Moves the object down the hierarchy; new attributes start [Null]. *)

val extent : t -> class_name:string -> Ident.Oid.t list
(** Live members of the class, including subclass members, by ascending
    OID. *)

val count_live : t -> int
val attributes_of : t -> Ident.Oid.t -> ((string * Value.t) list, error) result
val pp_object : t -> Format.formatter -> Ident.Oid.t -> unit
