lib/store/operation.ml: Chimera_event Chimera_util Event_type Fmt Ident List Object_store Result Value
