lib/store/object_store.ml: Chimera_util Fmt Hashtbl Ident List Printf Result Schema String Value
