lib/store/value.mli: Chimera_util Format Ident
