lib/store/query.ml: Fmt Object_store Printf Result Value
