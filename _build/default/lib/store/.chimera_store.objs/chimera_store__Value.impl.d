lib/store/value.ml: Bool Chimera_util Float Fmt Ident Int Printf String
