lib/store/schema.ml: Fmt Hashtbl List String Value
