lib/store/object_store.mli: Chimera_util Format Ident Schema Value
