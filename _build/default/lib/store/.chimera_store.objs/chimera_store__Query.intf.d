lib/store/query.mli: Format Object_store Value
