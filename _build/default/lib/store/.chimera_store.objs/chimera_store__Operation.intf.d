lib/store/operation.mli: Chimera_event Chimera_util Event_type Format Ident Object_store Value
