(* Terms, arithmetic expressions and comparison predicates over the object
   store: the query fragment shared by rule conditions and actions. *)


type term =
  | Const of Value.t
  | Var of string  (** a variable bound to an object or a scalar *)
  | Attr of string * string  (** [Attr (x, a)]: attribute [a] of object [x] *)

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type predicate = Cmp of comparison * term * term

type expr =
  | Term of term
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Min of expr * expr
  | Max of expr * expr

type error = [ Object_store.error | `Unbound_variable of string ]

let pp_error ppf = function
  | #Object_store.error as e -> Object_store.pp_error ppf e
  | `Unbound_variable v -> Fmt.pf ppf "unbound variable %s" v

let ( let* ) = Result.bind

(* [resolve] maps a variable to its value ([Value.Oid] for object
   variables). *)
let eval_term store ~resolve term : (Value.t, error) result =
  match term with
  | Const v -> Ok v
  | Var x -> (
      match resolve x with
      | Some v -> Ok v
      | None -> Error (`Unbound_variable x))
  | Attr (x, attribute) -> (
      match resolve x with
      | Some (Value.Oid oid) ->
          (Object_store.get store oid ~attribute
            : (Value.t, Object_store.error) result
            :> (Value.t, error) result)
      | Some v ->
          Error
            (`Type_error
              (Printf.sprintf "variable %s is not an object (%s)" x
                 (Value.to_string v)))
      | None -> Error (`Unbound_variable x))

let rec eval_expr store ~resolve expr : (Value.t, error) result =
  let binop f a b =
    let* va = eval_expr store ~resolve a in
    let* vb = eval_expr store ~resolve b in
    (f va vb : (Value.t, Value.arith_error) result :> (Value.t, error) result)
  in
  match expr with
  | Term t -> eval_term store ~resolve t
  | Add (a, b) -> binop Value.add a b
  | Sub (a, b) -> binop Value.sub a b
  | Mul (a, b) -> binop Value.mul a b
  | Div (a, b) -> binop Value.div a b
  | Min (a, b) -> binop Value.min_ a b
  | Max (a, b) -> binop Value.max_ a b

let eval_predicate store ~resolve (Cmp (op, a, b)) : (bool, error) result =
  let* va = eval_term store ~resolve a in
  let* vb = eval_term store ~resolve b in
  match op with
  | Eq -> Ok (Value.equal va vb)
  | Neq -> Ok (not (Value.equal va vb))
  | Lt | Le | Gt | Ge -> (
      match Value.compare_numeric va vb with
      | None ->
          Error
            (`Type_error
              (Printf.sprintf "cannot compare %s with %s" (Value.to_string va)
                 (Value.to_string vb)))
      | Some c ->
          Ok
            (match op with
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0
            | Eq | Neq -> assert false))

let comparison_symbol = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_term ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | Attr (x, a) -> Fmt.pf ppf "%s.%s" x a

let rec pp_expr ppf = function
  | Term t -> pp_term ppf t
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp_expr a pp_expr b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp_expr a pp_expr b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp_expr a pp_expr b

let pp_predicate ppf (Cmp (op, a, b)) =
  Fmt.pf ppf "%a %s %a" pp_term a (comparison_symbol op) pp_term b
