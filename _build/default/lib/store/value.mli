(** Attribute values of the object store. *)

open Chimera_util

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Oid of Ident.Oid.t
  | Null

type ty = T_int | T_float | T_str | T_bool | T_oid

val type_of : t -> ty option
(** [None] on [Null]. *)

val type_name : ty -> string

val conforms : t -> ty -> bool
(** [Null] conforms to every type; integer literals widen to real
    attributes. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal : t -> t -> bool
(** Structural, with int/float promotion. *)

val compare_numeric : t -> t -> int option
(** Ordering with int/float promotion; [None] on incompatible kinds
    (including [Null]). *)

type arith_error = [ `Type_error of string ]

val add : t -> t -> (t, arith_error) result
val sub : t -> t -> (t, arith_error) result
val mul : t -> t -> (t, arith_error) result

val div : t -> t -> (t, arith_error) result
(** Reports division by zero as a [`Type_error]. *)

val min_ : t -> t -> (t, arith_error) result
val max_ : t -> t -> (t, arith_error) result
