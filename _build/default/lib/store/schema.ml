(* Class definitions with single inheritance.

   Chimera classes carry typed attributes; generalize/specialize move an
   object along the hierarchy (and generate the corresponding event
   types). *)

type class_def = {
  name : string;
  super : string option;
  own_attributes : (string * Value.ty) list;
}

type t = { classes : (string, class_def) Hashtbl.t }

type error =
  [ `Unknown_class of string
  | `Duplicate_class of string
  | `Unknown_attribute of string * string
  | `Type_error of string ]

let pp_error ppf = function
  | `Unknown_class c -> Fmt.pf ppf "unknown class %s" c
  | `Duplicate_class c -> Fmt.pf ppf "class %s already defined" c
  | `Unknown_attribute (c, a) -> Fmt.pf ppf "class %s has no attribute %s" c a
  | `Type_error msg -> Fmt.pf ppf "type error: %s" msg

let create () = { classes = Hashtbl.create 16 }

let find t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> Ok c
  | None -> Error (`Unknown_class name)

let mem t name = Hashtbl.mem t.classes name

let define t ~name ?super ~attributes () =
  if Hashtbl.mem t.classes name then Error (`Duplicate_class name)
  else
    match super with
    | Some s when not (Hashtbl.mem t.classes s) -> Error (`Unknown_class s)
    | _ ->
        let c = { name; super; own_attributes = attributes } in
        Hashtbl.add t.classes name c;
        Ok c

(* Attributes including the inherited ones, superclass first so that
   shadowing (redefinition in a subclass) wins. *)
let rec attributes t name =
  match find t name with
  | Error _ as e -> e
  | Ok c -> (
      match c.super with
      | None -> Ok c.own_attributes
      | Some s -> (
          match attributes t s with
          | Error _ as e -> e
          | Ok inherited ->
              let not_shadowed (a, _) =
                not (List.mem_assoc a c.own_attributes)
              in
              Ok (List.filter not_shadowed inherited @ c.own_attributes)))

let attribute_type t ~class_name ~attribute =
  match attributes t class_name with
  | Error _ as e -> e
  | Ok attrs -> (
      match List.assoc_opt attribute attrs with
      | Some ty -> Ok ty
      | None -> Error (`Unknown_attribute (class_name, attribute)))

(* [is_subclass t ~sub ~super]: reflexive, transitive. *)
let is_subclass t ~sub ~super =
  let rec loop name =
    if String.equal name super then true
    else
      match Hashtbl.find_opt t.classes name with
      | Some { super = Some s; _ } -> loop s
      | _ -> false
  in
  mem t sub && mem t super && loop sub

let superclass t name =
  match find t name with Error _ as e -> e | Ok c -> Ok c.super

let direct_subclasses t name =
  Hashtbl.fold
    (fun _ c acc -> if c.super = Some name then c.name :: acc else acc)
    t.classes []

let class_names t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.classes [])

let pp ppf t =
  let pp_class ppf c =
    let pp_attr ppf (a, ty) = Fmt.pf ppf "%s: %s" a (Value.type_name ty) in
    Fmt.pf ppf "class %s%a (%a)" c.name
      Fmt.(option (fun ppf s -> Fmt.pf ppf " extends %s" s))
      c.super
      Fmt.(list ~sep:comma pp_attr)
      c.own_attributes
  in
  let names = class_names t in
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:cut pp_class)
    (List.map (fun n -> Hashtbl.find t.classes n) names)
