(** Data-manipulation operations: the sources of Chimera's internal
    events. *)

open Chimera_util
open Chimera_event

type t =
  | Create of { class_name : string; attrs : (string * Value.t) list }
  | Delete of { oid : Ident.Oid.t }
  | Modify of { oid : Ident.Oid.t; attribute : string; value : Value.t }
  | Generalize of { oid : Ident.Oid.t; to_class : string }
  | Specialize of { oid : Ident.Oid.t; to_class : string }
  | Select of { class_name : string }

(** An event occurrence to record after applying an operation. *)
type emitted = { etype : Event_type.t; affected : Ident.Oid.t }

val apply : Object_store.t -> t -> (emitted list, Object_store.error) result
(** Mutates the store and reports the generated events; [Select] reports
    one event per object of the extent (set-oriented select events). *)

val pp : Format.formatter -> t -> unit
