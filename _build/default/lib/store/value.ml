(* Attribute values of the object store. *)

open Chimera_util

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Oid of Ident.Oid.t
  | Null

type ty = T_int | T_float | T_str | T_bool | T_oid

let type_of = function
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_str
  | Bool _ -> Some T_bool
  | Oid _ -> Some T_oid
  | Null -> None

let type_name = function
  | T_int -> "integer"
  | T_float -> "real"
  | T_str -> "string"
  | T_bool -> "boolean"
  | T_oid -> "oid"

let conforms value ty =
  match (value, ty) with
  | Null, _ -> true
  | Int _, T_int
  | Float _, T_float
  | Str _, T_str
  | Bool _, T_bool
  | Oid _, T_oid ->
      true
  | Int _, T_float -> true (* integer literals widen to real attributes *)
  | _ -> false

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Oid oid -> Ident.Oid.pp ppf oid
  | Null -> Fmt.string ppf "null"

let to_string v = Fmt.str "%a" pp v

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Oid x, Oid y -> Ident.Oid.equal x y
  | Null, Null -> true
  | _ -> false

(* Numeric comparison promotes integers to reals; comparing incompatible
   kinds (or null) is a typing error surfaced to the caller. *)
let compare_numeric a b =
  match (a, b) with
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | Bool x, Bool y -> Some (Bool.compare x y)
  | Oid x, Oid y -> Some (Ident.Oid.compare x y)
  | _ -> None

type arith_error = [ `Type_error of string ]

let arith name f_int f_float a b =
  match (a, b) with
  | Int x, Int y -> Ok (Int (f_int x y))
  | Float x, Float y -> Ok (Float (f_float x y))
  | Int x, Float y -> Ok (Float (f_float (float_of_int x) y))
  | Float x, Int y -> Ok (Float (f_float x (float_of_int y)))
  | _ ->
      Error
        (`Type_error
          (Printf.sprintf "%s: expected numeric operands, got %s and %s" name
             (to_string a) (to_string b)))

let add = arith "add" ( + ) ( +. )
let sub = arith "sub" ( - ) ( -. )
let mul = arith "mul" ( * ) ( *. )

let div a b =
  match b with
  | Int 0 -> Error (`Type_error "div: division by zero")
  | Float f when Float.equal f 0.0 -> Error (`Type_error "div: division by zero")
  | _ -> arith "div" ( / ) ( /. ) a b

let min_ a b =
  match compare_numeric a b with
  | Some c -> Ok (if c <= 0 then a else b)
  | None -> Error (`Type_error "min: incomparable operands")

let max_ a b =
  match compare_numeric a b with
  | Some c -> Ok (if c >= 0 then a else b)
  | None -> Error (`Type_error "max: incomparable operands")
