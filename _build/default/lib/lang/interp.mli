(** Script interpreter: runs parsed scripts against a fresh engine.

    Script-level variables name objects created with [as X]; inspection
    commands ([show], [rules], [events]) append to an output buffer. *)

open Chimera_rules

type t

val create : ?config:Engine.config -> unit -> t
(** A fresh engine over an initially empty schema; classes are defined by
    the script. *)

val engine : t -> Engine.t

val output : t -> string
(** Accumulated inspection output. *)

val clear_output : t -> unit
val run_statement : t -> Ast.statement -> (unit, string) result
val run_script : t -> Ast.script -> (unit, string) result

val run_string : t -> string -> (unit, string) result
(** Parse and run; stops at the first failing statement. *)
