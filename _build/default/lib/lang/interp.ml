(* Script interpreter: binds the language to the engine.

   Script-level variables name objects created with [as X]; inspection
   commands append to an output buffer so callers (the CLI, the tests)
   decide where it goes. *)

open Chimera_store
open Chimera_rules

type t = {
  engine : Engine.t;
  vars : (string, Value.t) Hashtbl.t;
  out : Buffer.t;
}

let create ?config () =
  {
    engine = Engine.create ?config (Schema.create ());
    vars = Hashtbl.create 16;
    out = Buffer.create 256;
  }

let engine t = t.engine
let output t = Buffer.contents t.out
let clear_output t = Buffer.clear t.out

let resolve t x = Hashtbl.find_opt t.vars x

let ( let* ) = Result.bind

let err fmt = Fmt.kstr (fun msg -> Error msg) fmt

let eval_expr t e =
  match Query.eval_expr (Engine.store t.engine) ~resolve:(resolve t) e with
  | Ok v -> Ok v
  | Error e -> err "%a" Query.pp_error e

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

(* Elaborates one DML statement to a store operation; [D_create]'s binding
   is applied after the line executes (the engine reports affected oids). *)
let to_operation t dml : (Operation.t * string option, string) result =
  let as_oid var =
    match resolve t var with
    | Some (Value.Oid oid) -> Ok oid
    | Some v -> err "variable %s is not an object (%s)" var (Value.to_string v)
    | None -> err "unbound variable %s" var
  in
  match dml with
  | Ast.D_create { class_name; assigns; bind } ->
      let* attrs =
        map_result
          (fun (a, e) ->
            let* v = eval_expr t e in
            Ok (a, v))
          assigns
      in
      Ok (Operation.Create { class_name; attrs }, bind)
  | Ast.D_modify { var; attribute; value } ->
      let* oid = as_oid var in
      let* v = eval_expr t value in
      Ok (Operation.Modify { oid; attribute; value = v }, None)
  | Ast.D_delete var ->
      let* oid = as_oid var in
      Ok (Operation.Delete { oid }, None)
  | Ast.D_generalize { var; to_class } ->
      let* oid = as_oid var in
      Ok (Operation.Generalize { oid; to_class }, None)
  | Ast.D_specialize { var; to_class } ->
      let* oid = as_oid var in
      Ok (Operation.Specialize { oid; to_class }, None)
  | Ast.D_select class_name -> Ok (Operation.Select { class_name }, None)

let run_statement t stmt : (unit, string) result =
  match stmt with
  | Ast.Define_class { name; super; attributes } -> (
      match
        Schema.define
          (Object_store.schema (Engine.store t.engine))
          ~name ?super ~attributes ()
      with
      | Ok _ -> Ok ()
      | Error e -> err "%a" Schema.pp_error e)
  | Ast.Define_trigger spec -> (
      match Engine.define t.engine spec with
      | Ok _ -> Ok ()
      | Error (`Rule_error msg) -> Error msg)
  | Ast.Define_timer { name; period_lines } -> (
      match Engine.define_timer t.engine ~name ~period_lines with
      | _etype -> Ok ()
      | exception Invalid_argument msg -> Error msg)
  | Ast.Line dmls -> (
      let* elaborated = map_result (to_operation t) dmls in
      let ops = List.map fst elaborated in
      match Engine.execute_line_affected t.engine ops with
      | Error e -> err "%a" Engine.pp_error e
      | Ok affected ->
          List.iter2
            (fun (_, bind) oid ->
              match (bind, oid) with
              | Some var, Some oid -> Hashtbl.replace t.vars var (Value.Oid oid)
              | Some var, None -> Hashtbl.remove t.vars var
              | None, _ -> ())
            elaborated affected;
          Ok ())
  | Ast.Commit -> (
      match Engine.commit t.engine with
      | Ok () -> Ok ()
      | Error e -> err "%a" Engine.pp_error e)
  | Ast.Show class_name ->
      let store = Engine.store t.engine in
      let extent = Object_store.extent store ~class_name in
      Buffer.add_string t.out (Printf.sprintf "%s (%d):\n" class_name (List.length extent));
      List.iter
        (fun oid ->
          Buffer.add_string t.out
            (Fmt.str "  %a\n" (Object_store.pp_object store) oid))
        extent;
      Ok ()
  | Ast.Show_rules ->
      let table =
        Chimera_util.Pretty.table ~title:"rules (selection order)"
          ~header:
            [ "name"; "coupling"; "mode"; "prio"; "status"; "event"; "V(E)" ]
          ()
      in
      Rule_table.iter
        (fun rule ->
          let spec = Rule.spec rule in
          Chimera_util.Pretty.add_row table
            [
              spec.Rule.name;
              Rule.coupling_name spec.Rule.coupling;
              Rule.consumption_name spec.Rule.consumption;
              string_of_int spec.Rule.priority;
              (if rule.Rule.triggered then "TRIGGERED" else "idle");
              Fmt.str "%a" Chimera_calculus.Expr.pp spec.Rule.event;
              Fmt.str "%a" Chimera_optimizer.Relevance.pp (Rule.relevance rule);
            ])
        (Engine.rules t.engine);
      Buffer.add_string t.out (Chimera_util.Pretty.render table);
      Ok ()
  | Ast.Show_events ->
      Buffer.add_string t.out
        (Fmt.str "%a\n" Chimera_event.Event_base.pp (Engine.event_base t.engine));
      Ok ()

let run_script t script : (unit, string) result =
  List.fold_left
    (fun acc stmt ->
      let* () = acc in
      run_statement t stmt)
    (Ok ()) script

let run_string t src : (unit, string) result =
  let* script = Parser.parse src in
  run_script t script
