(** Recursive-descent parser for the script language; see the grammar in
    the implementation header and the README's language reference. *)

exception Error of string * int

val parse : string -> (Ast.script, string) result

val parse_exn : string -> Ast.script
(** Raises [Invalid_argument] on error. *)
