(** Lexer for the script language.  Event-calculus expressions are
    enclosed in braces and handed to the calculus parser verbatim;
    comments run from [--] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EVENT_EXPR of string  (** the raw text between braces *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | COLON
  | ASSIGN  (** [=] *)
  | EQ  (** [==] *)
  | NEQ  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type spanned = { token : token; pos : int; line : int }

exception Error of string * int

val tokenize : string -> spanned list
(** Ends with an [EOF] token; raises {!Error} with an offset on lexical
    errors. *)

val token_name : token -> string
