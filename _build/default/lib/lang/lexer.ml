(* Lexer for the Chimera rule-definition and data-manipulation language.

   Event-calculus expressions are enclosed in braces ({...}) and handed to
   the calculus parser verbatim, which keeps the two grammars independent
   (the calculus reuses ',' as its disjunction operator).  Comments run
   from '--' to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | EVENT_EXPR of string  (** the raw text between braces *)
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | DOT
  | COLON
  | ASSIGN  (** = *)
  | EQ  (** == *)
  | NEQ  (** != *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

type spanned = { token : token; pos : int; line : int }

exception Error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let emit pos token = out := { token; pos; line = !line } :: !out in
  let rec scan i =
    if i >= n then emit i EOF
    else
      match src.[i] with
      | '\n' ->
          incr line;
          scan (i + 1)
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
          let j = ref i in
          while !j < n && src.[!j] <> '\n' do
            incr j
          done;
          scan !j
      | '{' ->
          let close = ref (i + 1) in
          while !close < n && src.[!close] <> '}' do
            if src.[!close] = '\n' then incr line;
            incr close
          done;
          if !close >= n then raise (Error ("unterminated event expression", i));
          emit i (EVENT_EXPR (String.sub src (i + 1) (!close - i - 1)));
          scan (!close + 1)
      | '"' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then raise (Error ("unterminated string", i))
            else
              match src.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  Buffer.add_char buf
                    (match src.[j + 1] with
                    | 'n' -> '\n'
                    | 't' -> '\t'
                    | c -> c);
                  str (j + 2)
              | c ->
                  Buffer.add_char buf c;
                  str (j + 1)
          in
          let next = str (i + 1) in
          emit i (STRING (Buffer.contents buf));
          scan next
      | '(' ->
          emit i LPAREN;
          scan (i + 1)
      | ')' ->
          emit i RPAREN;
          scan (i + 1)
      | ',' ->
          emit i COMMA;
          scan (i + 1)
      | ';' ->
          emit i SEMI;
          scan (i + 1)
      | '.' ->
          emit i DOT;
          scan (i + 1)
      | ':' ->
          emit i COLON;
          scan (i + 1)
      | '+' ->
          emit i PLUS;
          scan (i + 1)
      | '-' ->
          emit i MINUS;
          scan (i + 1)
      | '*' ->
          emit i STAR;
          scan (i + 1)
      | '/' ->
          emit i SLASH;
          scan (i + 1)
      | '=' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit i EQ;
            scan (i + 2)
          end
          else begin
            emit i ASSIGN;
            scan (i + 1)
          end
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
          emit i NEQ;
          scan (i + 2)
      | '<' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit i LE;
            scan (i + 2)
          end
          else begin
            emit i LT;
            scan (i + 1)
          end
      | '>' ->
          if i + 1 < n && src.[i + 1] = '=' then begin
            emit i GE;
            scan (i + 2)
          end
          else begin
            emit i GT;
            scan (i + 1)
          end
      | c when is_digit c ->
          let j = ref i in
          while !j < n && is_digit src.[!j] do
            incr j
          done;
          if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1]
          then begin
            incr j;
            while !j < n && is_digit src.[!j] do
              incr j
            done;
            emit i (FLOAT (float_of_string (String.sub src i (!j - i))));
            scan !j
          end
          else begin
            emit i (INT (int_of_string (String.sub src i (!j - i))));
            scan !j
          end
      | c when is_ident_start c ->
          let j = ref i in
          while !j < n && is_ident_char src.[!j] do
            incr j
          done;
          emit i (IDENT (String.sub src i (!j - i)));
          scan !j
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  scan 0;
  List.rev !out

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "real %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | EVENT_EXPR _ -> "event expression"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | DOT -> "'.'"
  | COLON -> "':'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"
