(* Abstract syntax of the script language: class definitions, trigger
   definitions (elaborated straight to the rule subsystem's types), data
   manipulation lines, and inspection commands. *)

open Chimera_store
open Chimera_rules

type dml =
  | D_create of {
      class_name : string;
      assigns : (string * Query.expr) list;
      bind : string option;
    }
  | D_modify of { var : string; attribute : string; value : Query.expr }
  | D_delete of string
  | D_generalize of { var : string; to_class : string }
  | D_specialize of { var : string; to_class : string }
  | D_select of string

type statement =
  | Define_class of {
      name : string;
      super : string option;
      attributes : (string * Value.ty) list;
    }
  | Define_trigger of Rule.spec
  | Define_timer of { name : string; period_lines : int }
      (** a periodic clock event (Engine.define_timer) *)
  | Line of dml list  (** one transaction line (non-interruptible block) *)
  | Commit
  | Show of string  (** print the extent of a class *)
  | Show_rules
  | Show_events

type script = statement list
