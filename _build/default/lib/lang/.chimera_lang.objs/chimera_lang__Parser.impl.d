lib/lang/parser.ml: Action Ast Chimera_calculus Chimera_rules Chimera_store Condition Expr_parse Lexer List Printf Query Rule String Value
