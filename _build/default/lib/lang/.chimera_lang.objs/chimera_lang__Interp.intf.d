lib/lang/interp.mli: Ast Chimera_rules Engine
