lib/lang/ast.ml: Chimera_rules Chimera_store Query Rule Value
