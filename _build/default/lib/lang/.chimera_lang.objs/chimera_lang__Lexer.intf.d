lib/lang/lexer.mli:
