(** Ode-style automaton detector (related work, Section 2): a lazily
    compiled DFA whose states are bitmasks of per-node activation flags.
    Steady-state detection is one memo-table lookup per event.

    Supports the negation- and instance-free fragment (up to 62 nodes);
    activation matches the calculus exactly, but no activation timestamps
    are tracked — the representational gap Section 4 motivates. *)

open Chimera_event
open Chimera_calculus

exception Unsupported of string

type t

val create : Expr.set -> t
(** Raises {!Unsupported} on negation, instance operators, or more than 62
    nodes. *)

val on_event : t -> etype:Event_type.t -> unit
val active : t -> bool

val reset : t -> unit
(** Back to the initial state (consumes the history). *)

val states_materialized : t -> int
(** Number of memoized transitions (lazy-DFA footprint). *)
