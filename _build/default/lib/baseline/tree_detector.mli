(** Snoop-style incremental operator-tree detector (related work,
    Section 2 of the paper).

    Supports the negation- and instance-free fragment, on which it
    computes exactly the calculus' activation and activation timestamp
    (property-tested in the suite). *)

open Chimera_util
open Chimera_event
open Chimera_calculus

exception Unsupported of string

type t

val create : Expr.set -> t
(** Raises {!Unsupported} on negation or instance operators. *)

val on_event : t -> etype:Event_type.t -> timestamp:Time.t -> unit
(** Updates matching leaves and propagates along their root paths;
    timestamps must be fed in increasing order. *)

val value : t -> int
(** Current root activation timestamp; [0] when inactive. *)

val active : t -> bool

val reset : t -> unit
(** Clears all state (consumes the history). *)
