(** Snoop's parameter contexts for two-step sequences A;B (related work,
    Section 2): which A occurrence pairs with a terminating B, and which
    initiators are consumed.  Chimera's calculus behaves "recent-like";
    this detector implements all four policies for comparison. *)

open Chimera_util
open Chimera_event

type context =
  | Recent  (** pair with the most recent A; A stays available *)
  | Chronicle  (** pair with the oldest unconsumed A; it is consumed *)
  | Continuous  (** pair with every open A; all consumed *)
  | Cumulative  (** coincides with [Continuous] on two-step sequences *)

val context_name : context -> string

type pairing = { initiator : Time.t; terminator : Time.t }

val pp_pairing : Format.formatter -> pairing -> unit

type t

val create : context -> a:Event_type.t -> b:Event_type.t -> t
val on_event : t -> etype:Event_type.t -> timestamp:Time.t -> unit

val detections : t -> pairing list
(** In detection order. *)

val detection_count : t -> int
val reset : t -> unit
