lib/baseline/automaton.ml: Array Chimera_calculus Chimera_event Event_type Expr Hashtbl List
