lib/baseline/inst_tree_detector.ml: Chimera_calculus Chimera_util Expr Hashtbl Ident List Tree_detector
