lib/baseline/context_detector.mli: Chimera_event Chimera_util Event_type Format Time
