lib/baseline/naive.mli: Chimera_calculus Chimera_event Chimera_util Event_base Event_type Expr Ident
