lib/baseline/context_detector.ml: Chimera_event Chimera_util Event_type Fmt List Time
