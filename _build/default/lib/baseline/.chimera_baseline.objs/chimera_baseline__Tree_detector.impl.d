lib/baseline/tree_detector.ml: Chimera_calculus Chimera_event Chimera_util Event_type Expr List Time
