lib/baseline/naive.ml: Array Chimera_calculus Chimera_event Event_base Expr List Ts Window
