lib/baseline/inst_tree_detector.mli: Chimera_calculus Chimera_event Chimera_util Event_type Expr Ident Time
