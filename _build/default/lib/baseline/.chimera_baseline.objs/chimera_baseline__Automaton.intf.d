lib/baseline/automaton.mli: Chimera_calculus Chimera_event Event_type Expr
