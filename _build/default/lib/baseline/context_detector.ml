(* Snoop's parameter contexts (related work, Section 2).

   When a binary sequence A;B fires, WHICH occurrence of A pairs with the
   terminating B is a policy choice Snoop exposes as contexts; Chimera's
   calculus is "recent-like" (ts keeps the most recent activation) with
   consumption handled by rule windows.  This detector implements all four
   Snoop contexts for two-step sequences so the comparison benches and
   tests can exercise the design space:

   - Recent:     pair B with the most recent A; A stays available.
   - Chronicle:  pair B with the oldest unconsumed A; that A is consumed.
   - Continuous: pair B with every open A; all are consumed.
   - Cumulative: like Continuous (for a two-step sequence the two
                 coincide; they differ on longer compositions). *)

open Chimera_util
open Chimera_event

type context = Recent | Chronicle | Continuous | Cumulative

let context_name = function
  | Recent -> "recent"
  | Chronicle -> "chronicle"
  | Continuous -> "continuous"
  | Cumulative -> "cumulative"

(* An emitted detection: the initiating A occurrence and the terminating
   B occurrence (timestamps). *)
type pairing = { initiator : Time.t; terminator : Time.t }

let pp_pairing ppf p =
  Fmt.pf ppf "(%a, %a)" Time.pp p.initiator Time.pp p.terminator

type t = {
  context : context;
  a : Event_type.t;
  b : Event_type.t;
  (* Open initiator timestamps, oldest first. *)
  mutable open_initiators : Time.t list;
  mutable detections : pairing list;  (** newest first *)
}

let create context ~a ~b =
  { context; a; b; open_initiators = []; detections = [] }

let detections t = List.rev t.detections
let detection_count t = List.length t.detections

let on_event t ~etype ~timestamp =
  if Event_type.generalizes ~subscription:t.a ~occurrence:etype then
    t.open_initiators <- t.open_initiators @ [ timestamp ];
  if Event_type.generalizes ~subscription:t.b ~occurrence:etype then begin
    match t.context with
    | Recent -> (
        (* Most recent initiator; it remains available for later Bs. *)
        match List.rev t.open_initiators with
        | [] -> ()
        | most_recent :: _ ->
            t.detections <-
              { initiator = most_recent; terminator = timestamp }
              :: t.detections)
    | Chronicle -> (
        match t.open_initiators with
        | [] -> ()
        | oldest :: rest ->
            t.open_initiators <- rest;
            t.detections <-
              { initiator = oldest; terminator = timestamp } :: t.detections)
    | Continuous | Cumulative ->
        List.iter
          (fun initiator ->
            t.detections <-
              { initiator; terminator = timestamp } :: t.detections)
          t.open_initiators;
        t.open_initiators <- []
  end

let reset t =
  t.open_initiators <- [];
  t.detections <- []
