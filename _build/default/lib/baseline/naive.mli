(** The naive baseline: re-evaluate ts for every monitored expression
    after every event, with no filtering and no incremental state — the
    strawman Section 5.1's optimization is measured against.  Supports the
    full operator set. *)

open Chimera_util
open Chimera_event
open Chimera_calculus

type t

val create : Expr.set list -> t
val event_base : t -> Event_base.t
val on_event : t -> etype:Event_type.t -> oid:Ident.Oid.t -> unit
val active : t -> int -> bool
val count_active : t -> int
