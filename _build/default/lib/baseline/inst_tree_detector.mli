(** Instance-oriented incremental detection: one Snoop-style tree per
    affected object, lazily instantiated; the lifted activation is the
    exists-over-objects with the most recent per-object stamp (matches
    the calculus' max-lift, property-tested).

    Supported fragment: negation-free instance expressions. *)

open Chimera_util
open Chimera_event
open Chimera_calculus

exception Unsupported of string

type t

val create : Expr.inst -> t
(** Raises {!Unsupported} on instance negation. *)

val on_event : t -> etype:Event_type.t -> oid:Ident.Oid.t -> timestamp:Time.t -> unit

val value_on : t -> Ident.Oid.t -> int
(** Per-object activation stamp; [0] when inactive. *)

val active_on : t -> Ident.Oid.t -> bool

val value : t -> int
(** Lifted (set-level) activation stamp; [0] when inactive. *)

val active : t -> bool

val active_objects : t -> Ident.Oid.t list
(** Objects currently activating the expression, in first-seen order (the
    incremental counterpart of the [occurred] formula). *)

val reset : t -> unit
val object_count : t -> int
