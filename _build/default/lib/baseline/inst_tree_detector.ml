(* Instance-oriented incremental detection: one Snoop-style tree per
   affected object.

   For negation-free instance expressions, ots(E, t, o) coincides with
   ts of the corresponding set expression evaluated over o's events only,
   so the detector lazily instantiates a per-object {!Tree_detector} and
   routes each occurrence to its object's tree.  The set-level (lifted)
   activation is the exists-over-objects of the per-object states, with
   the activation stamp being the most recent per-object stamp — matching
   the calculus' max-lift (property-tested). *)

open Chimera_util
open Chimera_calculus

exception Unsupported of string

type t = {
  set_equivalent : Expr.set;
  trees : (int, Tree_detector.t) Hashtbl.t;
  mutable order : int list;  (** objects in first-seen order *)
}

let rec set_of_inst = function
  | Expr.I_prim p -> Expr.prim p
  | Expr.I_not _ -> raise (Unsupported "instance tree detector: negation")
  | Expr.I_and (a, b) -> Expr.conj (set_of_inst a) (set_of_inst b)
  | Expr.I_or (a, b) -> Expr.disj (set_of_inst a) (set_of_inst b)
  | Expr.I_seq (a, b) -> Expr.seq (set_of_inst a) (set_of_inst b)

let create ie =
  if Expr.inst_has_negation ie then
    raise (Unsupported "instance tree detector: negation");
  let set_equivalent = set_of_inst ie in
  (* Validate eagerly so construction fails like the set detector does. *)
  ignore (Tree_detector.create set_equivalent);
  { set_equivalent; trees = Hashtbl.create 64; order = [] }

let tree_for t oid =
  let key = Ident.Oid.to_int oid in
  match Hashtbl.find_opt t.trees key with
  | Some tree -> tree
  | None ->
      let tree = Tree_detector.create t.set_equivalent in
      Hashtbl.add t.trees key tree;
      t.order <- key :: t.order;
      tree

let on_event t ~etype ~oid ~timestamp =
  Tree_detector.on_event (tree_for t oid) ~etype ~timestamp

let value_on t oid =
  match Hashtbl.find_opt t.trees (Ident.Oid.to_int oid) with
  | Some tree -> Tree_detector.value tree
  | None -> 0

let active_on t oid = value_on t oid > 0

(* Exists-lift: the most recent per-object activation. *)
let value t =
  Hashtbl.fold
    (fun _ tree acc -> max acc (Tree_detector.value tree))
    t.trees 0

let active t = value t > 0

let active_objects t =
  List.rev
    (List.filter_map
       (fun key ->
         let tree = Hashtbl.find t.trees key in
         if Tree_detector.active tree then Some (Ident.Oid.of_int key)
         else None)
       t.order)

let reset t =
  Hashtbl.reset t.trees;
  t.order <- []

let object_count t = Hashtbl.length t.trees
