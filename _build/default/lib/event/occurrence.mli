(** An event occurrence: one row of the Event Base (Fig. 3 of the paper). *)

open Chimera_util

type t

val make :
  eid:Ident.Eid.t ->
  etype:Event_type.t ->
  oid:Ident.Oid.t ->
  timestamp:Time.t ->
  t

val eid : t -> Ident.Eid.t
val etype : t -> Event_type.t
val oid : t -> Ident.Oid.t
val timestamp : t -> Time.t

(** The attribute functions of Fig. 4. *)

val type_ : t -> Event_type.t
val obj : t -> Ident.Oid.t
val event_on_class : t -> string

val compare : t -> t -> int
(** Orders by timestamp, then EID. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
