lib/event/window.mli: Chimera_util Format Time
