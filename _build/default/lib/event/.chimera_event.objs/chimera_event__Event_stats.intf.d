lib/event/event_stats.mli: Chimera_util Event_base Event_type Format Ident Time Window
