lib/event/event_type.ml: Fmt Hashtbl Map Option Printf Set Stdlib String
