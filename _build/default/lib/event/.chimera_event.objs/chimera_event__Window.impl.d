lib/event/window.ml: Chimera_util Fmt Time
