lib/event/event_codec.mli: Event_base
