lib/event/event_type.mli: Format Hashtbl Map Set
