lib/event/event_base.mli: Chimera_util Event_type Format Ident Occurrence Time Window
