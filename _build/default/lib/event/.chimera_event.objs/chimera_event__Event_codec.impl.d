lib/event/event_codec.ml: Buffer Chimera_util Event_base Event_type Fun Ident List Occurrence Printf Result String Time
