lib/event/occurrence.mli: Chimera_util Event_type Format Ident Time
