lib/event/event_base.ml: Chimera_util Event_type Fmt Hashtbl Ident Int List Occurrence Set Time Vec Window
