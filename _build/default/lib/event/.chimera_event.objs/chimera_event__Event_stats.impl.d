lib/event/event_stats.ml: Chimera_util Event_base Event_type Fmt Ident Int List Map Occurrence Option Time Window
