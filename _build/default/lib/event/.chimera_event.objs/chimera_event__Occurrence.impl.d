lib/event/occurrence.ml: Chimera_util Event_type Fmt Ident Time
