(** The observation window R of Section 4.4: occurrences strictly after the
    rule's last consumption instant and at or before the current instant. *)

open Chimera_util

type t

val make : after:Time.t -> upto:Time.t -> t
(** Raises [Invalid_argument] when [after > upto]. *)

val all : upto:Time.t -> t
(** The whole history up to [upto] ([after = Time.origin]). *)

val after : t -> Time.t
val upto : t -> Time.t
val contains : t -> Time.t -> bool
val pp : Format.formatter -> t -> unit
