(* Summary statistics over an event base (or a window of it): the
   inspection companion to the Occurred Events structure — per-type and
   per-object occurrence counts, span, and rates.  Used by the CLI's run
   report and available to monitoring tools. *)

open Chimera_util

type t = {
  total : int;
  distinct_types : int;
  distinct_objects : int;
  first : Time.t option;
  last : Time.t option;
  by_type : (Event_type.t * int) list;  (** descending count *)
  by_object : (Ident.Oid.t * int) list;  (** descending count *)
}

module Int_map = Map.Make (Int)

let collect eb ~window =
  let total = ref 0 in
  let first = ref None in
  let last = ref None in
  let types = ref Event_type.Map.empty in
  let objects = ref Int_map.empty in
  Event_base.iter_in eb ~window (fun occ ->
      incr total;
      (match !first with None -> first := Some (Occurrence.timestamp occ) | Some _ -> ());
      last := Some (Occurrence.timestamp occ);
      types :=
        Event_type.Map.update (Occurrence.etype occ)
          (fun c -> Some (1 + Option.value ~default:0 c))
          !types;
      objects :=
        Int_map.update
          (Ident.Oid.to_int (Occurrence.oid occ))
          (fun c -> Some (1 + Option.value ~default:0 c))
          !objects);
  let descending l = List.sort (fun (_, a) (_, b) -> compare b a) l in
  {
    total = !total;
    distinct_types = Event_type.Map.cardinal !types;
    distinct_objects = Int_map.cardinal !objects;
    first = !first;
    last = !last;
    by_type = descending (Event_type.Map.bindings !types);
    by_object =
      descending
        (List.map (fun (k, c) -> (Ident.Oid.of_int k, c)) (Int_map.bindings !objects));
  }

let of_event_base eb =
  collect eb ~window:(Window.all ~upto:(Event_base.probe_now eb))

let top_types ?(n = 5) t =
  List.filteri (fun i _ -> i < n) t.by_type

let top_objects ?(n = 5) t =
  List.filteri (fun i _ -> i < n) t.by_object

let pp ppf t =
  Fmt.pf ppf "@[<v>%d occurrence(s), %d type(s), %d object(s)" t.total
    t.distinct_types t.distinct_objects;
  (match (t.first, t.last) with
  | Some a, Some b -> Fmt.pf ppf " over [%a, %a]" Time.pp a Time.pp b
  | _ -> ());
  List.iter
    (fun (etype, count) ->
      Fmt.pf ppf "@,  %6d x %a" count Event_type.pp etype)
    t.by_type;
  Fmt.pf ppf "@]"
