(** Primitive event types (Section 2 of the paper).

    An event type names a data-manipulation operation, the class it targets
    and — for [modify] — optionally the attribute it touches, e.g.
    [create(stock)] or [modify(stock.quantity)]. *)

type operation =
  | Create
  | Delete
  | Modify
  | Generalize
  | Specialize
  | Select
  | External of string
      (** Abstract/external events (HiPAC-style extension); the calculus
          treats them like any other type. *)

type t

val make : ?attribute:string -> operation -> class_name:string -> t
(** Raises [Invalid_argument] if [attribute] is given for an operation other
    than [Modify]. *)

val create : class_name:string -> t
val delete : class_name:string -> t
val modify : ?attribute:string -> class_name:string -> unit -> t
val generalize : class_name:string -> t
val specialize : class_name:string -> t
val select : class_name:string -> t
val external_ : name:string -> class_name:string -> t

val operation : t -> operation
val class_name : t -> string
val attribute : t -> string option
val operation_name : operation -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; also accepts a bare identifier as an external
    event type. *)

val generalizes : subscription:t -> occurrence:t -> bool
(** [generalizes ~subscription ~occurrence] holds when an occurrence of type
    [occurrence] counts as an occurrence of [subscription]; in particular an
    unqualified [modify(c)] subscription matches any [modify(c.attr)]. *)

module Key : sig
  type nonrec t = t

  val equal : t -> t -> bool
  val hash : t -> int
  val compare : t -> t -> int
end

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
