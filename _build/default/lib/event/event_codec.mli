(** Textual persistence for event bases: one tab-separated occurrence per
    line under a versioned header, so traces can be archived, diffed and
    replayed.  Timestamps are preserved exactly; EIDs are reassigned
    densely on load. *)

val to_string : Event_base.t -> string

val of_string : string -> (Event_base.t, string) result
(** Validates the header, field shapes, timestamp monotonicity and the
    even-instant discipline; errors carry line numbers. *)

val write_file : Event_base.t -> path:string -> unit
val read_file : string -> (Event_base.t, string) result
