(* An event occurrence: one row of the Event Base (Fig. 3). *)

open Chimera_util

type t = {
  eid : Ident.Eid.t;
  etype : Event_type.t;
  oid : Ident.Oid.t;
  timestamp : Time.t;
}

let make ~eid ~etype ~oid ~timestamp = { eid; etype; oid; timestamp }
let eid t = t.eid
let etype t = t.etype
let oid t = t.oid
let timestamp t = t.timestamp

(* The attribute functions of Fig. 4. *)
let type_ = etype
let obj = oid
let event_on_class t = Event_type.class_name t.etype

let compare a b =
  let c = Time.compare a.timestamp b.timestamp in
  if c <> 0 then c else Ident.Eid.compare a.eid b.eid

let equal a b = compare a b = 0

let pp ppf t =
  Fmt.pf ppf "%a: %a on %a @@ %a" Ident.Eid.pp t.eid Event_type.pp t.etype
    Ident.Oid.pp t.oid Time.pp t.timestamp
