(** Summary statistics over an event base (or a window of it): per-type
    and per-object occurrence counts, span and extremes — the inspection
    companion of the Occurred Events structure. *)

open Chimera_util

type t = {
  total : int;
  distinct_types : int;
  distinct_objects : int;
  first : Time.t option;
  last : Time.t option;
  by_type : (Event_type.t * int) list;  (** descending count *)
  by_object : (Ident.Oid.t * int) list;  (** descending count *)
}

val collect : Event_base.t -> window:Window.t -> t
val of_event_base : Event_base.t -> t
val top_types : ?n:int -> t -> (Event_type.t * int) list
val top_objects : ?n:int -> t -> (Ident.Oid.t * int) list
val pp : Format.formatter -> t -> unit
