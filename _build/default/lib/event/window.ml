(* A window over the event base: the set R of Section 4.4.

   R contains the occurrences strictly after [after] (the rule's last
   consumption instant, or the transaction start for preserving rules) and
   at or before [upto].  The [ts] function is additionally probed at
   instants [t <= upto]; queries clip at [t]. *)

open Chimera_util

type t = { after : Time.t; upto : Time.t }

let make ~after ~upto =
  if Time.( > ) after upto then
    invalid_arg "Window.make: after must not exceed upto";
  { after; upto }

let all ~upto = { after = Time.origin; upto }
let after t = t.after
let upto t = t.upto
let contains t x = Time.( < ) t.after x && Time.( <= ) x t.upto
let pp ppf t = Fmt.pf ppf "(%a, %a]" Time.pp t.after Time.pp t.upto
